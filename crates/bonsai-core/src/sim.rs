//! The single-process simulation driver.
//!
//! One step is the single-GPU slice of the paper's pipeline (§III-A):
//! SFC-sort + tree build + multipoles (all inside [`Tree::build`]), fused
//! tree-walk force evaluation, and a kick–drift–kick leap-frog update
//! (§III-B2 cites Hut, Makino & McMillan's "better leapfrog"). The tree is
//! rebuilt from scratch every step, exactly as Bonsai does on the GPU.

use crate::config::SimulationConfig;
use bonsai_analysis::EnergyReport;
use bonsai_tree::build::Tree;
use bonsai_tree::walk::{self, WalkStats};
use bonsai_tree::{Forces, InteractionCounts, Particles};
use bonsai_util::Vec3;

/// Diagnostics of one completed step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Simulation time *after* the step.
    pub time: f64,
    /// Steps completed so far.
    pub step: u64,
    /// Interactions evaluated by the walk.
    pub counts: InteractionCounts,
    /// Tree nodes built.
    pub tree_nodes: usize,
    /// Wall-clock seconds of the force phase (host measurement).
    pub force_seconds: f64,
}

/// A running N-body simulation.
pub struct Simulation {
    /// Particle state (input order is *not* preserved across steps; identity
    /// lives in `particles.id`).
    particles: Particles,
    config: SimulationConfig,
    /// Accelerations matching `particles` (same order), with G applied.
    acc: Vec<Vec3>,
    /// Potentials matching `particles`.
    pot: Vec<f64>,
    time: f64,
    step: u64,
    last_counts: InteractionCounts,
    last_nodes: usize,
}

impl Simulation {
    /// Create a simulation and evaluate initial forces.
    pub fn new(particles: Particles, config: SimulationConfig) -> Self {
        particles.validate().expect("invalid initial conditions");
        let mut sim = Self {
            particles,
            config,
            acc: Vec::new(),
            pot: Vec::new(),
            time: 0.0,
            step: 0,
            last_counts: InteractionCounts::zero(),
            last_nodes: 0,
        };
        sim.refresh_forces();
        sim
    }

    /// Rebuild the tree and recompute forces for the current positions.
    /// Particle order becomes SFC order as a side effect (as on the GPU).
    fn refresh_forces(&mut self) -> WalkStats {
        let particles = std::mem::take(&mut self.particles);
        let tree = Tree::build(particles, self.config.tree_params());
        let (forces, stats) = walk::self_gravity(&tree, &self.config.walk_params());
        self.last_counts = stats.counts;
        self.last_nodes = tree.nodes.len();
        let Forces { acc, pot } = forces;
        self.acc = acc;
        self.pot = pot;
        self.particles = tree.particles;
        stats
    }

    /// Advance one kick–drift–kick leap-frog step of `config.dt`.
    pub fn step(&mut self) -> StepStats {
        let dt = self.config.dt;
        let half = 0.5 * dt;
        // Kick (half) + drift (full) with current accelerations.
        for i in 0..self.particles.len() {
            self.particles.vel[i] += self.acc[i] * half;
            let v = self.particles.vel[i];
            self.particles.pos[i] += v * dt;
        }
        // New forces at the drifted positions.
        let sw = std::time::Instant::now();
        self.refresh_forces();
        let force_seconds = sw.elapsed().as_secs_f64();
        // Kick (half) with the new accelerations.
        for i in 0..self.particles.len() {
            self.particles.vel[i] += self.acc[i] * half;
        }
        self.time += dt;
        self.step += 1;
        StepStats {
            time: self.time,
            step: self.step,
            counts: self.last_counts,
            tree_nodes: self.last_nodes,
            force_seconds,
        }
    }

    /// Run `n` steps, returning the last step's stats.
    pub fn run(&mut self, n: usize) -> Option<StepStats> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.step());
        }
        last
    }

    /// Current particle state (SFC order).
    pub fn particles(&self) -> &Particles {
        &self.particles
    }

    /// Mutable particle access (e.g. for recentring); forces are refreshed
    /// by the next step.
    pub fn particles_mut(&mut self) -> &mut Particles {
        &mut self.particles
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps completed.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Configuration in effect.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Accelerations of the current state (matching `particles()` order).
    pub fn accelerations(&self) -> &[Vec3] {
        &self.acc
    }

    /// Interaction counts of the most recent force evaluation.
    pub fn last_counts(&self) -> InteractionCounts {
        self.last_counts
    }

    /// Accelerations keyed by particle id — the serial reference the
    /// distributed equivalence oracle compares a [`bonsai-sim`] cluster
    /// against (mirrors `Cluster::accelerations_by_id`).
    pub fn accelerations_by_id(&self) -> std::collections::HashMap<u64, Vec3> {
        self.particles
            .id
            .iter()
            .copied()
            .zip(self.acc.iter().copied())
            .collect()
    }

    /// Energy/momentum diagnostics from the tree potentials of the current
    /// state (no extra force evaluation).
    pub fn energy_report(&self) -> EnergyReport {
        let forces = Forces {
            acc: self.acc.clone(),
            pot: self.pot.clone(),
        };
        EnergyReport::from_forces(&self.particles, &forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    #[test]
    fn two_body_circular_orbit() {
        // Two equal masses on a circular orbit: separation 2, each at r=1,
        // v = sqrt(G m_other · ... ) — for m=1 each, a = 1/4 = v²/1 ⇒ v = 1/2.
        let mut p = Particles::new();
        p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0, 0);
        p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0, 1);
        let period = std::f64::consts::TAU / 0.5; // ω = v/r = 0.5
        let dt = period / 2000.0;
        let mut sim = Simulation::new(p, SimulationConfig::nbody_units(0.0, 0.0, dt));
        sim.run(2000);
        // After one full period both bodies are back (2nd-order accuracy).
        let p = sim.particles();
        for i in 0..2 {
            let expect = if p.id[i] == 0 {
                Vec3::new(1.0, 0.0, 0.0)
            } else {
                Vec3::new(-1.0, 0.0, 0.0)
            };
            assert!(
                (p.pos[i] - expect).norm() < 5e-3,
                "body {i} at {} after one period",
                p.pos[i]
            );
        }
    }

    #[test]
    fn leapfrog_is_second_order() {
        // Halving dt must reduce the one-orbit position error ~4x.
        let orbit_error = |steps: usize| -> f64 {
            let mut p = Particles::new();
            p.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0, 0);
            p.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0, 1);
            let period = std::f64::consts::TAU / 0.5;
            let dt = period / steps as f64;
            let mut sim = Simulation::new(p, SimulationConfig::nbody_units(0.0, 0.0, dt));
            sim.run(steps);
            let p = sim.particles();
            let i0 = if p.id[0] == 0 { 0 } else { 1 };
            (p.pos[i0] - Vec3::new(1.0, 0.0, 0.0)).norm()
        };
        let e1 = orbit_error(500);
        let e2 = orbit_error(1000);
        let order = (e1 / e2).log2();
        assert!(order > 1.7 && order < 2.3, "convergence order {order} (e1={e1}, e2={e2})");
    }

    #[test]
    fn plummer_energy_conservation() {
        let ic = plummer_sphere(2000, 17);
        let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.02, 0.005));
        let e0 = sim.energy_report();
        sim.run(60);
        let e1 = sim.energy_report();
        let drift = e1.drift_from(&e0);
        assert!(drift < 2e-3, "energy drift {drift} over 60 steps");
        // Momentum drifts only through the (non-antisymmetric) multipole
        // approximation; it must stay tiny relative to the Σ m|v| scale ~0.5.
        assert!(e1.momentum < 1e-4, "momentum {}", e1.momentum);
    }

    #[test]
    fn time_and_step_advance() {
        let ic = plummer_sphere(100, 3);
        let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.5, 0.05, 0.01));
        assert_eq!(sim.step_count(), 0);
        let s = sim.step();
        assert_eq!(s.step, 1);
        assert!((sim.time() - 0.01).abs() < 1e-15);
        assert!(s.counts.flops() > 0);
        assert!(s.tree_nodes > 0);
    }

    #[test]
    fn identity_preserved_across_steps() {
        let ic = plummer_sphere(500, 5);
        let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.02, 0.01));
        sim.run(3);
        let mut ids = sim.particles().id.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn virialized_model_stays_virialized() {
        let ic = plummer_sphere(3000, 29);
        let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.02, 0.01));
        sim.run(50);
        let q = sim.energy_report().virial_ratio();
        assert!((q - 0.5).abs() < 0.08, "virial ratio {q} after 50 steps");
    }
}
