//! Thread-per-rank "live" mode: the distributed force computation with real
//! message passing over the crossbeam fabric — no global orchestrator.
//!
//! This exercises the paper's §III-B2 protocol end to end, including its
//! cleverest trick: after the boundary allgather, *both* sides of every pair
//! evaluate the same sufficiency predicate on the same data. The sender
//! learns which dedicated LETs it must build; the receiver learns how many
//! LETs it will receive — with **zero** extra communication ("by carrying
//! out the same checks for ourselves and for the remote domain we perform
//! double the amount of compute work, but this reduces the amount of
//! required communication and increases the asynchronicity of the LET
//! process").

use bonsai_domain::letbuild::{boundary_sufficient_for, build_let};
use bonsai_domain::{boundary_tree, LetTree};
use bonsai_net::{Fabric, MsgKind};
use bonsai_sfc::{KeyMap, KeyRange};
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::{Forces, Particles};
use bonsai_util::Aabb;

/// Result of one rank's live force computation.
pub struct LiveRankResult {
    /// The rank's particles in tree (SFC) order.
    pub particles: Particles,
    /// Forces aligned with `particles`.
    pub forces: Forces,
    /// Dedicated LETs this rank sent.
    pub lets_sent: usize,
    /// Dedicated LETs this rank received.
    pub lets_received: usize,
    /// MAC violations on pruned nodes (expected ≈ 0).
    pub forced_cuts: u64,
}

/// Run one distributed force computation with a real thread per rank.
///
/// `per_rank[r]` must contain exactly the particles of `domains[r]` under
/// `keymap`. Returns per-rank results, index-aligned with the inputs.
pub fn live_forces(
    per_rank: Vec<Particles>,
    domains: Vec<KeyRange>,
    keymap: KeyMap,
    tree_params: TreeParams,
    params: WalkParams,
) -> Vec<LiveRankResult> {
    let p = per_rank.len();
    assert_eq!(domains.len(), p);
    let endpoints = Fabric::new(p);
    let mut handles = Vec::with_capacity(p);
    for (ep, (mine, my_domain)) in endpoints
        .into_iter()
        .zip(per_rank.into_iter().zip(domains.into_iter()))
    {
        let keymap = keymap.clone();
        handles.push(std::thread::spawn(move || {
            let me = ep.rank;
            // 1. Local tree over the shared key map.
            let tree = Tree::build_with_keymap(mine, keymap, tree_params);

            // 2. Boundary-tree allgather (real serialized bytes).
            let my_boundary = boundary_tree(&tree, &my_domain);
            let all_payloads = ep.allgather(MsgKind::Boundary, my_boundary.to_bytes());
            let boundaries: Vec<LetTree> = all_payloads
                .iter()
                .map(|b| LetTree::from_bytes(b).expect("boundary decode"))
                .collect();
            let geoms: Vec<Vec<Aabb>> = boundaries.iter().map(LetTree::frontier_boxes).collect();

            // 3. Symmetric sufficiency checks.
            //    (a) which remote domains need a dedicated LET *from me*;
            //    (b) how many dedicated LETs *I* will receive.
            let mut lets_sent = 0usize;
            for j in 0..p {
                if j == me || boundaries[me].is_empty() {
                    continue;
                }
                if !boundary_sufficient_for(&boundaries[me], &geoms[j], params.theta) {
                    let lt = build_let(&tree, &geoms[j], params.theta);
                    ep.send(j, MsgKind::Let, lt.to_bytes());
                    lets_sent += 1;
                }
            }
            let mut expected = 0usize;
            let mut use_boundary: Vec<usize> = Vec::new();
            for i in 0..p {
                if i == me || boundaries[i].is_empty() {
                    continue;
                }
                if boundary_sufficient_for(&boundaries[i], &geoms[me], params.theta) {
                    use_boundary.push(i);
                } else {
                    expected += 1;
                }
            }

            // 4. Walk: local tree, sufficient boundaries, then dedicated
            //    LETs as they arrive.
            let (mut forces, st) = walk::self_gravity(&tree, &params);
            let mut forced = st.forced_cuts;
            for &i in &use_boundary {
                let (f, s) =
                    walk::walk_tree(&boundaries[i].view(), &tree.particles.pos, &tree.groups, &params);
                forces.accumulate(&f);
                forced += s.forced_cuts;
            }
            // Sort by sender so force accumulation order (and therefore the
            // floating-point result) is independent of message arrival order.
            let mut incoming = ep.recv_n_of(MsgKind::Let, expected);
            incoming.sort_by_key(|(from, _)| *from);
            for (_, payload) in incoming {
                let lt = LetTree::from_bytes(&payload).expect("LET decode");
                let (f, s) = walk::walk_tree(&lt.view(), &tree.particles.pos, &tree.groups, &params);
                forces.accumulate(&f);
                forced += s.forced_cuts;
            }

            LiveRankResult {
                particles: tree.particles,
                forces,
                lets_sent,
                lets_received: expected,
                forced_cuts: forced,
            }
        }));
    }
    handles.into_iter().map(|h| h.join().expect("rank thread")).collect()
}

/// Helper: split a particle set into `p` even SFC domains (used by tests and
/// examples to prepare `live_forces` inputs).
pub fn split_for_ranks(
    all: &Particles,
    p: usize,
    tree_params: TreeParams,
) -> (Vec<Particles>, Vec<KeyRange>, KeyMap) {
    let keymap = KeyMap::new(&all.bounds(), tree_params.curve);
    let keys: Vec<u64> = all.pos.iter().map(|&q| keymap.key_of(q)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let cuts: Vec<u64> = (1..p).map(|i| sorted[i * all.len() / p]).collect();
    let domains = bonsai_sfc::range::ranges_from_cuts(&cuts);
    let mut per_rank: Vec<Particles> = (0..p).map(|_| Particles::new()).collect();
    for i in 0..all.len() {
        let r = bonsai_sfc::range::find_owner(&domains, keys[i]);
        per_rank[r].push(all.pos[i], all.vel[i], all.mass[i], all.id[i]);
    }
    (per_rank, domains, keymap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;
    use bonsai_tree::direct::direct_self_forces;
    use bonsai_util::Vec3;

    #[test]
    fn live_forces_match_direct_reference() {
        let n = 2400;
        let all = plummer_sphere(n, 21);
        let params = WalkParams::new(0.4, 0.01);
        let tp = TreeParams::default();
        let (per_rank, domains, keymap) = split_for_ranks(&all, 6, tp);
        let results = live_forces(per_rank, domains, keymap, tp, params);

        let (reference, _) = direct_self_forces(&all, 0.01, 1.0);
        let ref_by_id: std::collections::HashMap<u64, Vec3> = all
            .id
            .iter()
            .zip(&reference.acc)
            .map(|(&i, &a)| (i, a))
            .collect();

        let mut count = 0;
        let mut rms = 0.0;
        for r in &results {
            for i in 0..r.particles.len() {
                let exact = ref_by_id[&r.particles.id[i]];
                let e = (r.forces.acc[i] - exact).norm() / exact.norm().max(1e-12);
                rms += e * e;
                count += 1;
            }
            let frac = r.forced_cuts as f64 / 1e6;
            assert!(frac < 1.0, "forced cuts {}", r.forced_cuts);
        }
        assert_eq!(count, n);
        let rms = (rms / count as f64).sqrt();
        assert!(rms < 3e-3, "live distributed rms error {rms}");
    }

    #[test]
    fn symmetric_checks_balance_sent_and_received() {
        let all = plummer_sphere(3000, 22);
        let params = WalkParams::new(0.4, 0.01);
        let tp = TreeParams::default();
        let (per_rank, domains, keymap) = split_for_ranks(&all, 8, tp);
        let results = live_forces(per_rank, domains, keymap, tp, params);
        let sent: usize = results.iter().map(|r| r.lets_sent).sum();
        let recv: usize = results.iter().map(|r| r.lets_received).sum();
        assert_eq!(sent, recv, "every dedicated LET must be expected by its receiver");
        assert!(sent > 0, "near neighbours must exchange dedicated LETs");
    }

    #[test]
    fn live_distant_ranks_reuse_boundaries() {
        // Two well-separated blobs: cross-blob pairs must satisfy the
        // sufficiency check and use the broadcast boundary, so each rank
        // receives fewer dedicated LETs than (p - 1).
        let mut all = plummer_sphere(2000, 24);
        let b = plummer_sphere(2000, 25);
        for i in 0..b.len() {
            all.push(
                b.pos[i] + Vec3::new(80.0, 0.0, 0.0),
                b.vel[i],
                b.mass[i],
                2000 + b.id[i],
            );
        }
        let tp = TreeParams::default();
        let (per_rank, domains, keymap) = split_for_ranks(&all, 8, tp);
        let results = live_forces(per_rank, domains, keymap, tp, WalkParams::new(0.4, 0.01));
        let max_received = results.iter().map(|r| r.lets_received).max().unwrap();
        assert!(
            max_received < 7,
            "every rank received a dedicated LET from everyone ({max_received}/7)"
        );
        let total_forced: u64 = results.iter().map(|r| r.forced_cuts).sum();
        let total_pc_scale = 1_000_000u64;
        assert!(total_forced < total_pc_scale / 1000, "forced cuts {total_forced}");
    }

    #[test]
    fn live_is_deterministic() {
        let all = plummer_sphere(1200, 23);
        let params = WalkParams::new(0.4, 0.01);
        let tp = TreeParams::default();
        let run = || {
            let (per_rank, domains, keymap) = split_for_ranks(&all, 4, tp);
            let mut out: Vec<(u64, Vec3)> = live_forces(per_rank, domains, keymap, tp, params)
                .into_iter()
                .flat_map(|r| {
                    r.particles
                        .id
                        .iter()
                        .copied()
                        .zip(r.forces.acc.iter().copied())
                        .collect::<Vec<_>>()
                })
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for ((ia, va), (ib, vb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(va, vb, "non-deterministic force for id {ia}");
        }
    }
}
