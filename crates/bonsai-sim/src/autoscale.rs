//! Health-driven autoscaling: the policy half of elastic membership.
//!
//! The membership protocol (`bonsai-net::membership`) gives the cluster a
//! dynamic world size; this module decides *when* to use it. The policy
//! consumes the alert transitions the long-run health rules fire inside
//! every [`Cluster::step`](crate::Cluster::step) — a sustained step-time
//! creep or flop imbalance means the current rank count is struggling, so
//! grow; a sustained stretch of under-populated ranks means capacity is
//! idle, so shrink. Decisions are pure functions of the observed signals,
//! so a seeded run autoscales identically every time.
//!
//! Scaling actions are rate-limited by a cooldown: a view change re-splits
//! the key space and re-evaluates forces, and the health rules need a few
//! steps of post-change signal before their verdict on the *new* world
//! means anything.

use bonsai_obs::health::{AlertEvent, AlertKind};

/// Bounds and thresholds of the autoscaling policy.
#[derive(Clone, Debug)]
pub struct AutoscaleConfig {
    /// Never shrink below this many ranks.
    pub min_ranks: usize,
    /// Never grow beyond this many ranks.
    pub max_ranks: usize,
    /// Ranks admitted per grow decision.
    pub grow_by: usize,
    /// Ranks retired per shrink decision.
    pub shrink_by: usize,
    /// Steps to hold after any scaling action before deciding again.
    pub cooldown_steps: u64,
    /// Mean particles per rank below which a rank is considered idle.
    pub idle_particles_per_rank: f64,
    /// Consecutive idle steps before a shrink fires.
    pub idle_steps: u64,
    /// Health rules whose *open* transition triggers a grow.
    pub grow_rules: Vec<String>,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_ranks: 1,
            max_ranks: 64,
            grow_by: 2,
            shrink_by: 1,
            cooldown_steps: 8,
            idle_particles_per_rank: 256.0,
            idle_steps: 4,
            grow_rules: vec!["step-time-creep".to_string(), "flop-imbalance".to_string()],
        }
    }
}

/// What the policy wants done after a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Admit this many fresh ranks.
    Grow(usize),
    /// Gracefully retire this many ranks.
    Shrink(usize),
    /// Leave the world alone.
    Hold,
}

impl std::fmt::Display for ScaleDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleDecision::Grow(k) => write!(f, "grow(+{k})"),
            ScaleDecision::Shrink(k) => write!(f, "shrink(-{k})"),
            ScaleDecision::Hold => write!(f, "hold"),
        }
    }
}

/// The stateful policy: tracks the cooldown window and the idle streak,
/// and keeps an auditable log of every non-hold decision.
#[derive(Clone, Debug)]
pub struct AutoscalePolicy {
    cfg: AutoscaleConfig,
    last_change: Option<u64>,
    idle_run: u64,
    decisions: Vec<(u64, ScaleDecision)>,
}

impl AutoscalePolicy {
    /// Fresh policy with no history.
    pub fn new(cfg: AutoscaleConfig) -> Self {
        Self {
            cfg,
            last_change: None,
            idle_run: 0,
            decisions: Vec::new(),
        }
    }

    /// The configuration the policy runs under.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Every grow/shrink the policy ordered, in step order.
    pub fn decisions(&self) -> &[(u64, ScaleDecision)] {
        &self.decisions
    }

    /// One decision from one step's evidence: the current world size, the
    /// mean particles per rank, and the alert transitions the health rules
    /// fired this step. Growth (a rule from `grow_rules` opening) wins over
    /// shrink; both respect the min/max bounds and the cooldown.
    pub fn decide(
        &mut self,
        step: u64,
        world: usize,
        mean_particles_per_rank: f64,
        alerts: &[AlertEvent],
    ) -> ScaleDecision {
        // The idle streak accumulates even through the cooldown, so a
        // genuinely over-provisioned cluster shrinks as soon as the window
        // opens rather than restarting the count.
        if mean_particles_per_rank < self.cfg.idle_particles_per_rank && world > self.cfg.min_ranks
        {
            self.idle_run += 1;
        } else {
            self.idle_run = 0;
        }
        if let Some(last) = self.last_change {
            if step.saturating_sub(last) < self.cfg.cooldown_steps {
                return ScaleDecision::Hold;
            }
        }
        let wants_growth = alerts.iter().any(|a| {
            a.kind == AlertKind::Open && self.cfg.grow_rules.iter().any(|r| *r == a.rule)
        });
        let decision = if wants_growth {
            let k = self.cfg.grow_by.min(self.cfg.max_ranks.saturating_sub(world));
            if k > 0 {
                ScaleDecision::Grow(k)
            } else {
                ScaleDecision::Hold
            }
        } else if self.idle_run >= self.cfg.idle_steps {
            let k = self.cfg.shrink_by.min(world.saturating_sub(self.cfg.min_ranks));
            if k > 0 {
                ScaleDecision::Shrink(k)
            } else {
                ScaleDecision::Hold
            }
        } else {
            ScaleDecision::Hold
        };
        if decision != ScaleDecision::Hold {
            self.last_change = Some(step);
            self.idle_run = 0;
            self.decisions.push((step, decision));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_obs::health::Severity;

    fn open_alert(step: u64, rule: &str) -> AlertEvent {
        AlertEvent {
            step,
            rule: rule.to_string(),
            metric: "m".to_string(),
            severity: Severity::Warning,
            kind: AlertKind::Open,
            value: 1.0,
            detail: String::new(),
        }
    }

    #[test]
    fn grow_rule_opening_triggers_growth_once_per_cooldown() {
        let mut p = AutoscalePolicy::new(AutoscaleConfig {
            cooldown_steps: 5,
            ..AutoscaleConfig::default()
        });
        let a = [open_alert(3, "step-time-creep")];
        assert_eq!(p.decide(3, 4, 1e4, &a), ScaleDecision::Grow(2));
        // Same alert inside the cooldown: held.
        let b = [open_alert(5, "flop-imbalance")];
        assert_eq!(p.decide(5, 6, 1e4, &b), ScaleDecision::Hold);
        // After the window, growth resumes.
        assert_eq!(p.decide(9, 6, 1e4, &b), ScaleDecision::Grow(2));
        assert_eq!(p.decisions().len(), 2);
    }

    #[test]
    fn unrelated_rules_and_close_transitions_do_not_grow() {
        let mut p = AutoscalePolicy::new(AutoscaleConfig::default());
        let mut close = open_alert(1, "step-time-creep");
        close.kind = AlertKind::Close;
        assert_eq!(p.decide(1, 4, 1e4, &[close]), ScaleDecision::Hold);
        let other = [open_alert(2, "energy-drift")];
        assert_eq!(p.decide(2, 4, 1e4, &other), ScaleDecision::Hold);
    }

    #[test]
    fn sustained_idle_shrinks_and_respects_min() {
        let mut p = AutoscalePolicy::new(AutoscaleConfig {
            idle_steps: 3,
            cooldown_steps: 0,
            min_ranks: 2,
            ..AutoscaleConfig::default()
        });
        assert_eq!(p.decide(1, 4, 10.0, &[]), ScaleDecision::Hold);
        assert_eq!(p.decide(2, 4, 10.0, &[]), ScaleDecision::Hold);
        assert_eq!(p.decide(3, 4, 10.0, &[]), ScaleDecision::Shrink(1));
        // The streak resets after the action.
        assert_eq!(p.decide(4, 3, 10.0, &[]), ScaleDecision::Hold);
        // At the floor, idleness no longer counts.
        let mut q = AutoscalePolicy::new(AutoscaleConfig {
            idle_steps: 1,
            cooldown_steps: 0,
            min_ranks: 2,
            ..AutoscaleConfig::default()
        });
        assert_eq!(q.decide(1, 2, 10.0, &[]), ScaleDecision::Hold);
    }

    #[test]
    fn growth_clamps_to_max_ranks() {
        let mut p = AutoscalePolicy::new(AutoscaleConfig {
            max_ranks: 5,
            grow_by: 4,
            ..AutoscaleConfig::default()
        });
        let a = [open_alert(1, "flop-imbalance")];
        assert_eq!(p.decide(1, 4, 1e4, &a), ScaleDecision::Grow(1));
        let b = [open_alert(20, "flop-imbalance")];
        assert_eq!(p.decide(20, 5, 1e4, &b), ScaleDecision::Hold);
    }
}
