//! Per-step timing breakdowns in the shape of the paper's Table II.

use bonsai_tree::InteractionCounts;
use bonsai_util::timer::PhaseTimes;
use serde::Serialize;

/// The Table II phase names, in presentation order. Each maps 1:1 onto a
/// field of [`StepBreakdown`]; the observability layer uses them as the
/// `phase` label of the per-step seconds gauge family.
///
/// The paper's single "Unbalance + Other" row is kept only for
/// presentation ([`StepBreakdown::other`]); internally it is attributed to
/// four real sub-phases — leapfrog integration, load-balance bookkeeping,
/// host orchestration and the cross-rank straggler gap — so the
/// critical-path analyzer never sees an opaque bucket.
pub const PHASES: [&str; 12] = [
    "sort",
    "domain_update",
    "tree_construction",
    "tree_properties",
    "gravity_local",
    "gravity_lets",
    "non_hidden_comm",
    "recovery",
    "integration",
    "load_balance",
    "orchestration",
    "unbalance",
];

/// Leapfrog kick–drift throughput of the device (particles/s): a handful of
/// fused multiply-adds per particle, fully bandwidth-bound on a K20X.
pub const INTEGRATE_RATE: f64 = 1.0e9;

/// Host-side kernel-launch / driver latency charged per launch (seconds).
pub const LAUNCH_LATENCY: f64 = 5.0e-6;

/// Kernel launches issued by the step driver outside the phases that are
/// already priced (sort passes, build levels, gravity blocks bookkeeping).
pub const STEP_LAUNCHES: f64 = 32.0;

/// One Table II column: per-phase simulated seconds plus the derived
/// performance numbers.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct StepBreakdown {
    /// Ranks (GPUs) in the run.
    pub gpus: u32,
    /// Particles per GPU.
    pub particles_per_gpu: u64,
    /// "Sorting SFC" row (GPU).
    pub sort: f64,
    /// "Domain Update" row (CPU + network).
    pub domain_update: f64,
    /// "Tree-construction" row (GPU).
    pub tree_construction: f64,
    /// "Tree-properties" row (GPU).
    pub tree_properties: f64,
    /// "Compute gravity Local-tree" row (GPU).
    pub gravity_local: f64,
    /// "Compute gravity LETs" row (GPU, overlapped with CPU LET builds).
    pub gravity_lets: f64,
    /// "Non-hidden LET comm" row.
    pub non_hidden_comm: f64,
    /// "Recovery" row: retransmissions and fault handling (0 in clean runs).
    pub recovery: f64,
    /// Leapfrog kick–drift integration (device, bandwidth-bound).
    pub integration: f64,
    /// Load-balance bookkeeping: key sampling and flop-weight updates (host).
    pub load_balance: f64,
    /// Host orchestration: kernel launches, queue management, driver sync.
    pub orchestration: f64,
    /// Cross-rank straggler gap in total gravity (max − mean rank time).
    pub unbalance: f64,
    /// Mean particle-particle interactions per particle.
    pub pp_per_particle: f64,
    /// Mean particle-cell interactions per particle.
    pub pc_per_particle: f64,
}

impl StepBreakdown {
    /// Flatten the timing rows into a named phase record (the interchange
    /// with the metrics registry: one gauge per [`PHASES`] entry).
    pub fn phase_times(&self) -> PhaseTimes {
        PhaseTimes::from_pairs([
            ("sort", self.sort),
            ("domain_update", self.domain_update),
            ("tree_construction", self.tree_construction),
            ("tree_properties", self.tree_properties),
            ("gravity_local", self.gravity_local),
            ("gravity_lets", self.gravity_lets),
            ("non_hidden_comm", self.non_hidden_comm),
            ("recovery", self.recovery),
            ("integration", self.integration),
            ("load_balance", self.load_balance),
            ("orchestration", self.orchestration),
            ("unbalance", self.unbalance),
        ])
    }

    /// Rebuild the timing rows from a phase record plus the scalar context
    /// (inverse of [`StepBreakdown::phase_times`]).
    pub fn from_phase_times(
        gpus: u32,
        particles_per_gpu: u64,
        pp_per_particle: f64,
        pc_per_particle: f64,
        pt: &PhaseTimes,
    ) -> Self {
        Self {
            gpus,
            particles_per_gpu,
            sort: pt.get("sort"),
            domain_update: pt.get("domain_update"),
            tree_construction: pt.get("tree_construction"),
            tree_properties: pt.get("tree_properties"),
            gravity_local: pt.get("gravity_local"),
            gravity_lets: pt.get("gravity_lets"),
            non_hidden_comm: pt.get("non_hidden_comm"),
            recovery: pt.get("recovery"),
            integration: pt.get("integration"),
            load_balance: pt.get("load_balance"),
            orchestration: pt.get("orchestration"),
            unbalance: pt.get("unbalance"),
            pp_per_particle,
            pc_per_particle,
        }
    }

    /// The paper's "Unbalance + Other" presentation row: the four
    /// attributed sub-phases summed back into one bucket.
    pub fn other(&self) -> f64 {
        self.integration + self.load_balance + self.orchestration + self.unbalance
    }

    /// Total wall-clock of the step (sum of the rows, as in Table II).
    pub fn total(&self) -> f64 {
        self.sort
            + self.domain_update
            + self.tree_construction
            + self.tree_properties
            + self.gravity_local
            + self.gravity_lets
            + self.non_hidden_comm
            + self.recovery
            + self.other()
    }

    /// Counted flops per particle at the §VI-A rates.
    pub fn flops_per_particle(&self) -> f64 {
        23.0 * self.pp_per_particle + 65.0 * self.pc_per_particle
    }

    /// Total counted flops across the machine for one step.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_particle() * self.particles_per_gpu as f64 * self.gpus as f64
    }

    /// "GPU" performance row: flops over time spent in the force kernels.
    pub fn gpu_tflops(&self) -> f64 {
        let t = self.gravity_local + self.gravity_lets;
        if t <= 0.0 {
            0.0
        } else {
            self.total_flops() / t / 1e12
        }
    }

    /// "Application" performance row: flops over the full step.
    pub fn application_tflops(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.total_flops() / t / 1e12
        }
    }

    /// Interaction counts aggregated over the machine.
    pub fn machine_counts(&self) -> InteractionCounts {
        let n = self.particles_per_gpu as f64 * self.gpus as f64;
        InteractionCounts {
            pp: (self.pp_per_particle * n) as u64,
            pc: (self.pc_per_particle * n) as u64,
        }
    }

    /// Render as a Table II style column.
    pub fn format_column(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("=== {label}: {} GPUs × {:.2}M particles ===\n", self.gpus, self.particles_per_gpu as f64 / 1e6));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Sorting SFC", self.sort));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Domain Update", self.domain_update));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Tree-construction", self.tree_construction));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Tree-properties", self.tree_properties));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Compute gravity Local-tree", self.gravity_local));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Compute gravity LETs", self.gravity_lets));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Non-hidden LET comm", self.non_hidden_comm));
        if self.recovery > 0.0 {
            s.push_str(&format!("{:<28} {:>8.3} s\n", "Recovery", self.recovery));
        }
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Unbalance + Other", self.other()));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "  · integration", self.integration));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "  · load balance", self.load_balance));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "  · orchestration", self.orchestration));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "  · unbalance", self.unbalance));
        s.push_str(&format!("{:<28} {:>8.3} s\n", "Total", self.total()));
        s.push_str(&format!("{:<28} {:>8.0}\n", "Particle-Particle /particle", self.pp_per_particle));
        s.push_str(&format!("{:<28} {:>8.0}\n", "Particle-Cell /particle", self.pc_per_particle));
        s.push_str(&format!("{:<28} {:>8.1} Tflops\n", "GPU", self.gpu_tflops()));
        s.push_str(&format!("{:<28} {:>8.1} Tflops\n", "Application", self.application_tflops()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StepBreakdown {
        StepBreakdown {
            gpus: 2,
            particles_per_gpu: 1000,
            sort: 0.1,
            domain_update: 0.2,
            tree_construction: 0.1,
            tree_properties: 0.03,
            gravity_local: 1.45,
            gravity_lets: 2.0,
            non_hidden_comm: 0.1,
            recovery: 0.0,
            integration: 0.04,
            load_balance: 0.03,
            orchestration: 0.13,
            unbalance: 0.1,
            pp_per_particle: 1716.0,
            pc_per_particle: 6765.0,
        }
    }

    #[test]
    fn totals_and_flops() {
        let b = sample();
        assert!((b.total() - 4.28).abs() < 1e-12);
        let fpp = b.flops_per_particle();
        assert!((fpp - (23.0 * 1716.0 + 65.0 * 6765.0)).abs() < 1e-9);
        assert!((b.total_flops() - fpp * 2000.0).abs() < 1e-6);
    }

    #[test]
    fn performance_rows() {
        let b = sample();
        let gpu = b.gpu_tflops();
        let app = b.application_tflops();
        assert!(gpu > app, "kernel rate must exceed application rate");
        assert!((gpu / app - b.total() / (b.gravity_local + b.gravity_lets)).abs() < 1e-9);
    }

    #[test]
    fn format_contains_all_rows() {
        let s = sample().format_column("test");
        for key in [
            "Sorting SFC",
            "Domain Update",
            "Tree-construction",
            "Tree-properties",
            "Local-tree",
            "LETs",
            "Non-hidden",
            "Unbalance",
            "Total",
            "GPU",
            "Application",
        ] {
            assert!(s.contains(key), "missing row {key}");
        }
    }

    #[test]
    fn phase_times_round_trip() {
        let b = sample();
        let pt = b.phase_times();
        // Every declared phase name is present in the record…
        for name in PHASES {
            assert_eq!(pt.get(name), {
                let r = StepBreakdown::from_phase_times(1, 1, 0.0, 0.0, &pt);
                match name {
                    "sort" => r.sort,
                    "domain_update" => r.domain_update,
                    "tree_construction" => r.tree_construction,
                    "tree_properties" => r.tree_properties,
                    "gravity_local" => r.gravity_local,
                    "gravity_lets" => r.gravity_lets,
                    "non_hidden_comm" => r.non_hidden_comm,
                    "recovery" => r.recovery,
                    "integration" => r.integration,
                    "load_balance" => r.load_balance,
                    "orchestration" => r.orchestration,
                    "unbalance" => r.unbalance,
                    _ => unreachable!(),
                }
            });
        }
        // …and the full record survives the round trip.
        let r = StepBreakdown::from_phase_times(
            b.gpus,
            b.particles_per_gpu,
            b.pp_per_particle,
            b.pc_per_particle,
            &pt,
        );
        assert_eq!(r.total(), b.total());
        assert_eq!(r.gravity_local, b.gravity_local);
        assert_eq!(r.gpus, b.gpus);
        assert!((pt.total() - b.total()).abs() < 1e-12);
    }

    #[test]
    fn other_is_the_sum_of_its_attributed_sub_phases() {
        let b = sample();
        assert!((b.other() - 0.3).abs() < 1e-12);
        assert!((b.total() - (b.sort + b.domain_update + b.tree_construction
            + b.tree_properties + b.gravity_local + b.gravity_lets
            + b.non_hidden_comm + b.recovery + b.integration + b.load_balance
            + b.orchestration + b.unbalance)).abs() < 1e-12);
    }

    #[test]
    fn zero_guard() {
        let b = StepBreakdown::default();
        assert_eq!(b.gpu_tflops(), 0.0);
        assert_eq!(b.application_tflops(), 0.0);
    }
}
