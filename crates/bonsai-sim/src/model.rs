//! The calibrated scaling model: Table II and Fig. 4 at full machine scale.
//!
//! The cluster simulator (`crate::cluster`) runs the real algorithm, but a
//! laptop cannot hold 242 billion particles. This module extrapolates with a
//! small set of documented scaling laws whose *forms* come from the
//! algorithm and whose constants are calibrated against the paper's own
//! measurements (Table II):
//!
//! | quantity | law | origin |
//! |---|---|---|
//! | p-p per particle | constant ≈ 1716 | NLEAF-determined leaf occupancy |
//! | p-c per particle, single GPU | `194·log₂N − 55` | O(N log N) walk depth |
//! | p-c growth with ranks | `+255·ln p` | LET cells replace remote subtrees |
//! | local-gravity share | 50.8% of single-GPU p-c | measured 1.45/2.45 split |
//! | boundary tree size | ~70 cells ≈ 12 KB | SFC-range covering cells, N-independent (§III-B2) |
//! | LET neighbours | min(p−1, 40) | paper's "~40 nearest neighbors" |
//! | non-hidden comm | `c_m · p^(1/3)` | torus diameter growth (Gemini); empirically similar on the dragonfly |
//! | unbalance+other | `0.1 + c₂_m · p^(1/3)` | stragglers grow with machine diameter |
//!
//! Every headline number of the paper is reproduced by tests in this module
//! to within a few percent: the 4.77 s step at 18600 GPUs, 24.77 Pflops
//! application / 33.49 Pflops GPU performance, ≥95% weak-scaling efficiency
//! on Piz Daint, and the strong-scaling columns.

use crate::breakdown::StepBreakdown;
use bonsai_gpu::{GpuModel, KernelVariant, K20X};
use bonsai_net::{MachineSpec, NetworkModel, PIZ_DAINT, TITAN};
use bonsai_tree::InteractionCounts;

/// Host-CPU key-classification rate of the Xeon E5-2670 (keys/s) used in the
/// domain update; Titan's Opteron scales by `cpu_let_rate`.
const XEON_KEY_RATE: f64 = 130.0e6;

/// Serialized boundary-tree size (bytes): ~70 covering cells × 176 B/node.
const BOUNDARY_BYTES: u64 = 70 * 176;

/// Fraction of single-GPU p-c interactions served by the local tree when
/// running multi-GPU (calibrated to the 1.45 s / 2.45 s split of Table II).
const LOCAL_PC_FRACTION: f64 = 0.5078;

/// p-p interactions per particle (single GPU / multi GPU, Table II row).
const PP_SINGLE: f64 = 1745.0;
/// p-p per particle in parallel runs.
const PP_PARALLEL: f64 = 1716.0;

/// Non-hidden-communication coefficient per machine (s · p^(-1/3)).
fn non_hidden_coeff(machine: &MachineSpec) -> f64 {
    if machine.name == "Titan" {
        0.0089
    } else {
        0.0044
    }
}

/// Unbalance+other growth coefficient per machine.
fn other_coeff(machine: &MachineSpec) -> f64 {
    if machine.name == "Titan" {
        0.016
    } else {
        0.0119
    }
}

/// The calibrated machine-scale model.
#[derive(Clone, Debug)]
pub struct ScalingModel {
    /// Machine (network + host CPU).
    pub machine: MachineSpec,
    /// GPU model (K20X with the tuned kernel for both paper machines).
    pub gpu: GpuModel,
    net: NetworkModel,
}

impl ScalingModel {
    /// Model for one of the paper's machines.
    pub fn new(machine: MachineSpec) -> Self {
        Self {
            machine,
            gpu: GpuModel::new(K20X, KernelVariant::TreeKeplerTuned),
            net: NetworkModel::new(machine),
        }
    }

    /// The Titan model.
    pub fn titan() -> Self {
        Self::new(TITAN)
    }

    /// The Piz Daint model.
    pub fn piz_daint() -> Self {
        Self::new(PIZ_DAINT)
    }

    /// Single-GPU p-c interactions per particle for `n` particles.
    pub fn pc_single(n: u64) -> f64 {
        (194.0 * (n as f64).log2() - 55.0).max(0.0)
    }

    /// Total p-c per particle at `p` ranks with `n` particles each.
    pub fn pc_total(p: u32, n: u64) -> f64 {
        if p <= 1 {
            Self::pc_single(n)
        } else {
            Self::pc_single(n) + 255.0 * (p as f64).ln()
        }
    }

    /// Predict a full Table II column.
    pub fn predict(&self, p: u32, n_per_gpu: u64) -> StepBreakdown {
        let n = n_per_gpu;
        let pc_tot = Self::pc_total(p, n);
        let (pp, pc_local, pc_lets) = if p <= 1 {
            (PP_SINGLE, Self::pc_single(n), 0.0)
        } else {
            let local = Self::pc_single(n) * LOCAL_PC_FRACTION;
            (PP_PARALLEL, local, pc_tot - local)
        };

        let counts = |ppx: f64, pcx: f64| InteractionCounts {
            pp: (ppx * n as f64) as u64,
            pc: (pcx * n as f64) as u64,
        };

        // GPU phases.
        let sort = self.gpu.sort_time(n);
        let tree_construction = self.gpu.build_time(n);
        let tree_properties = self.gpu.props_time(n);
        let gravity_local = self.gpu.gravity_time(counts(pp, pc_local));
        let gravity_lets = if p <= 1 {
            0.0
        } else {
            self.gpu.gravity_time(counts(0.0, pc_lets))
        };

        // Domain update: CPU key classification + boundary allgather +
        // particle exchange (~2% of particles migrate per step).
        let domain_update = if p <= 1 {
            0.0
        } else {
            let classify = n as f64 / (XEON_KEY_RATE * self.machine.cpu_let_rate);
            let allgather = self.net.allgatherv_time(p, BOUNDARY_BYTES);
            let exchange = self
                .net
                .particle_exchange_time((n as f64 * 0.02 * 56.0) as u64, 6);
            classify + allgather + exchange
        };

        // Non-hidden LET communication and straggler terms (machine-diameter
        // scaling).
        let p3 = (p as f64).powf(1.0 / 3.0);
        let non_hidden_comm = if p <= 1 { 0.0 } else { non_hidden_coeff(&self.machine) * p3 };
        // The former opaque "other" bucket, attributed: the calibrated total
        // `0.1 + c₂_m·p^(1/3)` is preserved exactly (tests pin the 4.77 s
        // step), but split into leapfrog integration, load-balance
        // bookkeeping on the host, residual host orchestration, and the
        // diameter-scaling straggler term.
        let integration = n as f64 / crate::breakdown::INTEGRATE_RATE;
        let load_balance = if p <= 1 {
            0.0
        } else {
            // Two-level sample sort: ~64 sampled keys from each of p ranks,
            // classified at the host key rate.
            64.0 * p as f64 / (XEON_KEY_RATE * self.machine.cpu_let_rate)
        };
        let orchestration = (0.1 - integration - load_balance).max(0.0);
        let unbalance = if p <= 1 { 0.0 } else { other_coeff(&self.machine) * p3 };

        StepBreakdown {
            gpus: p,
            particles_per_gpu: n,
            sort,
            domain_update,
            tree_construction,
            tree_properties,
            gravity_local,
            gravity_lets,
            non_hidden_comm,
            recovery: 0.0,
            integration,
            load_balance,
            orchestration,
            unbalance,
            pp_per_particle: pp,
            pc_per_particle: pc_tot,
        }
    }

    /// Weak-scaling series at `n_per_gpu` for a list of GPU counts, returning
    /// `(breakdown, efficiency_vs_single_gpu)` pairs.
    pub fn weak_scaling(&self, gpu_counts: &[u32], n_per_gpu: u64) -> Vec<(StepBreakdown, f64)> {
        let single = self.predict(1, n_per_gpu);
        let base = single.application_tflops();
        gpu_counts
            .iter()
            .map(|&p| {
                let b = self.predict(p, n_per_gpu);
                let eff = b.application_tflops() / (p as f64) / base;
                (b, eff)
            })
            .collect()
    }

    /// Time-to-solution estimate (§VI-C): wall-clock days to simulate
    /// `gyr` billion years at the paper's 75,000-year step with `p` GPUs and
    /// `n_per_gpu` particles.
    pub fn time_to_solution_days(&self, p: u32, n_per_gpu: u64, gyr: f64) -> f64 {
        let steps = gyr * 1e9 / 75_000.0;
        let step_time = self.predict(p, n_per_gpu).total();
        steps * step_time / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M13: u64 = 13_000_000;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b
    }

    #[test]
    fn single_gpu_column() {
        let m = ScalingModel::titan();
        let b = m.predict(1, M13);
        assert!(rel(b.total(), 2.79) < 0.05, "single GPU total {}", b.total());
        assert!(rel(b.gravity_local, 2.45) < 0.05);
        assert!(rel(b.pc_per_particle, 4529.0) < 0.03, "pc {}", b.pc_per_particle);
    }

    #[test]
    fn titan_weak_scaling_columns() {
        let m = ScalingModel::titan();
        // (gpus, paper total, paper gravity-LETs)
        for (p, total, lets) in [
            (1024u32, 4.02, 1.78),
            (2048, 4.15, 1.89),
            (4096, 4.41, 2.0),
            (18600, 4.77, 2.09),
        ] {
            let b = m.predict(p, M13);
            assert!(
                rel(b.total(), total) < 0.10,
                "Titan {p}: total {} vs paper {total}",
                b.total()
            );
            assert!(
                rel(b.gravity_lets, lets) < 0.10,
                "Titan {p}: LETs {} vs paper {lets}",
                b.gravity_lets
            );
        }
    }

    #[test]
    fn piz_daint_weak_scaling_columns() {
        let m = ScalingModel::piz_daint();
        for (p, total) in [(1024u32, 3.84), (2048, 3.94), (4096, 4.15)] {
            let b = m.predict(p, M13);
            assert!(
                rel(b.total(), total) < 0.10,
                "Piz Daint {p}: total {} vs paper {total}",
                b.total()
            );
        }
    }

    #[test]
    fn strong_scaling_columns() {
        // Titan 8192 GPUs × 6.5M: 2.65 s; Piz Daint 4096 × 6.5M: 2.1 s.
        let t = ScalingModel::titan().predict(8192, 6_500_000);
        assert!(rel(t.total(), 2.65) < 0.10, "Titan strong total {}", t.total());
        let d = ScalingModel::piz_daint().predict(4096, 6_500_000);
        assert!(rel(d.total(), 2.1) < 0.12, "Piz Daint strong total {}", d.total());
    }

    #[test]
    fn headline_pflops() {
        // §VI-D: 24.77 Pflops application, 33.49 Pflops GPU at 18600 GPUs.
        let b = ScalingModel::titan().predict(18600, M13);
        let app_pflops = b.application_tflops() * b.gpus as f64 / 1e3 / b.gpus as f64;
        let _ = app_pflops;
        let total_app = b.total_flops() / b.total() / 1e15;
        let total_gpu = b.total_flops() / (b.gravity_local + b.gravity_lets) / 1e15;
        assert!(rel(total_app, 24.77) < 0.05, "application {total_app} Pflops");
        assert!(rel(total_gpu, 33.49) < 0.05, "GPU {total_gpu} Pflops");
        // 46% / 34% of theoretical peak (73.2 Pflops).
        let peak = 18600.0 * 3.935e12 / 1e15;
        assert!(rel(total_gpu / peak, 0.46) < 0.07);
        assert!(rel(total_app / peak, 0.34) < 0.07);
    }

    #[test]
    fn parallel_efficiency_matches_paper() {
        // Piz Daint stays ≥ 95%; Titan reaches ~86% at 18600.
        let daint = ScalingModel::piz_daint();
        for (_, eff) in daint.weak_scaling(&[4, 64, 1024, 4096, 5200], M13) {
            assert!(eff >= 0.93, "Piz Daint efficiency {eff}");
        }
        let titan = ScalingModel::titan();
        let series = titan.weak_scaling(&[18600], M13);
        let eff = series[0].1;
        assert!((eff - 0.86).abs() < 0.04, "Titan 18600 efficiency {eff}");
    }

    #[test]
    fn per_node_rates_match_section_vi_d() {
        // "1.8 Tflops per GPU and 1.33 Tflops overall application
        // performance per node."
        let b = ScalingModel::titan().predict(18600, M13);
        let per_node_gpu = b.total_flops() / (b.gravity_local + b.gravity_lets) / 18600.0 / 1e12;
        let per_node_app = b.total_flops() / b.total() / 18600.0 / 1e12;
        assert!(rel(per_node_gpu, 1.8) < 0.05, "per-node GPU {per_node_gpu}");
        assert!(rel(per_node_app, 1.33) < 0.05, "per-node app {per_node_app}");
    }

    #[test]
    fn time_to_solution_about_a_week() {
        // §VI-C: 242G particles on 18600 GPUs, 8 Gyr ⇒ about a week
        // (~106,667 steps at ≤ 5.5 s).
        let m = ScalingModel::titan();
        let days = m.time_to_solution_days(18600, M13, 8.0);
        assert!((5.0..8.5).contains(&days), "time to solution {days} days");
        // 106 billion on 8192 nodes: "just over six days".
        let days2 = m.time_to_solution_days(8192, M13, 8.0);
        assert!((5.0..8.0).contains(&days2), "8192-node solution {days2} days");
    }

    #[test]
    fn interaction_counts_track_table2() {
        for (p, pc) in [(1024u32, 6287.0), (2048, 6527.0), (4096, 6765.0), (18600, 6920.0)] {
            let got = ScalingModel::pc_total(p, M13);
            assert!(rel(got, pc) < 0.05, "pc at {p}: {got} vs {pc}");
        }
    }

    #[test]
    fn step_time_grows_monotonically_with_ranks() {
        let m = ScalingModel::titan();
        let mut prev = 0.0;
        for p in [1u32, 16, 256, 1024, 4096, 18600] {
            let t = m.predict(p, M13).total();
            assert!(t > prev, "total at {p} = {t} not monotone");
            prev = t;
        }
    }
}
