//! Per-rank step timelines and the ASCII Gantt chart of the overlap story.
//!
//! §III-B2's central engineering claim is *concurrency*: while the GPU
//! grinds the local tree, the CPU threads build LETs and the network moves
//! them, so only a small residue of communication is ever exposed. This
//! module reconstructs that schedule from a step's measured quantities and
//! renders it, making the claim visible:
//!
//! ```text
//! rank 0 GPU  SSDDBBPLLLLLLLLLLRRRRRRRR......
//! rank 0 COMM ......mmmmmm...................
//! ```
//!
//! (`S` sort, `D` domain update, `B` build, `P` properties, `L` local
//! gravity, `R` remote/LET gravity, `m` LET communication, `.` idle.)

use crate::cluster::{Cluster, StepMeasurements};
use bonsai_gpu::GpuModel;
use bonsai_net::{FaultKind, NetworkModel, RecoveryAction};

/// One rank's reconstructed schedule (seconds from step start).
#[derive(Clone, Debug)]
pub struct RankTimeline {
    /// `(label, start, end)` for every busy interval on the GPU lane.
    pub gpu: Vec<(&'static str, f64, f64)>,
    /// `(label, start, end)` for the communication lane.
    pub comm: Vec<(&'static str, f64, f64)>,
}

impl RankTimeline {
    /// Wall-clock span of the timeline.
    pub fn makespan(&self) -> f64 {
        self.gpu
            .iter()
            .chain(self.comm.iter())
            .map(|&(_, _, e)| e)
            .fold(0.0, f64::max)
    }

    /// Fraction of LET communication hidden under GPU work.
    pub fn hidden_comm_fraction(&self) -> f64 {
        let comm_total: f64 = self.comm.iter().map(|&(_, s, e)| e - s).sum();
        if comm_total <= 0.0 {
            return 1.0;
        }
        // Exposed = comm time beyond the end of GPU work.
        let gpu_end = self.gpu.iter().map(|&(_, _, e)| e).fold(0.0, f64::max);
        let exposed: f64 = self
            .comm
            .iter()
            .map(|&(_, s, e)| (e - gpu_end.max(s)).max(0.0))
            .sum();
        1.0 - exposed / comm_total
    }
}

/// Reconstruct per-rank timelines from the last step of a cluster.
pub fn step_timelines(cluster: &Cluster) -> Vec<RankTimeline> {
    let meas: &StepMeasurements = &cluster.last_measurements;
    let gpu: GpuModel = GpuModel::k20x_tuned();
    let net = NetworkModel::new(cluster.cfg.machine);
    let p = meas.counts_local.len();
    (0..p)
        .map(|r| {
            let n = cluster.rank_particles(r).len() as u64;
            let mut t = 0.0;
            let mut lane = Vec::new();
            let mut push = |label, dur: f64, t: &mut f64| {
                let s = *t;
                *t += dur;
                lane.push((label, s, *t));
            };
            push("sort", gpu.sort_time(n), &mut t);
            push("domain", n as f64 / 130.0e6, &mut t);
            push("build", gpu.build_time(n), &mut t);
            push("props", gpu.props_time(n), &mut t);
            let local_start = t;
            push("local", gpu.gravity_time(meas.counts_local[r]), &mut t);
            push("lets", gpu.gravity_time(meas.counts_lets[r]), &mut t);
            // Communication lane: LET exchange starting when local gravity
            // starts (the driver/comm threads run concurrently).
            let nb = meas.let_neighbors[r] as u32;
            let per = if nb > 0 {
                (meas.let_bytes_sent[r] / nb as usize) as u64
            } else {
                0
            };
            let comm_dur = net.let_exchange_time(nb, per);
            let comm = vec![("let-comm", local_start, local_start + comm_dur)];
            RankTimeline { gpu: lane, comm }
        })
        .collect()
}

/// Render timelines as an ASCII Gantt chart, `width` characters across.
pub fn render_gantt(timelines: &[RankTimeline], width: usize) -> String {
    let makespan = timelines
        .iter()
        .map(RankTimeline::makespan)
        .fold(0.0, f64::max)
        .max(1e-12);
    let glyph = |label: &str| -> char {
        match label {
            "sort" => 'S',
            "domain" => 'D',
            "build" => 'B',
            "props" => 'P',
            "local" => 'L',
            "lets" => 'R',
            "let-comm" => 'm',
            _ => '?',
        }
    };
    let mut out = String::new();
    for (r, tl) in timelines.iter().enumerate() {
        for (lane_name, lane) in [("GPU ", &tl.gpu), ("COMM", &tl.comm)] {
            let mut row = vec!['.'; width];
            for &(label, s, e) in lane {
                let c0 = ((s / makespan) * width as f64) as usize;
                let c1 = (((e / makespan) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                    *cell = glyph(label);
                }
            }
            out.push_str(&format!("rank {r:>2} {lane_name} "));
            out.extend(row);
            out.push('\n');
        }
    }
    out.push_str("S sort  D domain  B build  P props  L local gravity  R LET gravity  m LET comm\n");
    out
}

/// Summarize the fault activity of a step's measurements: headline counts,
/// per-kind / per-action tallies, then the chronological event log from the
/// step's [`bonsai_net::FaultLog`] slice.
pub fn render_fault_summary(meas: &StepMeasurements) -> String {
    let log = &meas.faults;
    if log.is_clean() && meas.retransmit_bytes == 0 && meas.degraded_lets == 0 {
        return "faults: clean step (nothing injected, nothing recovered)\n".to_string();
    }
    let mut out = format!(
        "faults: {} injected, {} recovery actions, {} B retransmitted, {} degraded LET walks\n",
        log.injected.len(),
        log.recoveries.len(),
        meas.retransmit_bytes,
        meas.degraded_lets
    );
    const KINDS: [FaultKind; 8] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Stall,
        FaultKind::Crash,
    ];
    for kind in KINDS {
        let n = log.injected_of(kind);
        if n > 0 {
            out.push_str(&format!("  injected {kind:<10} × {n}\n"));
        }
    }
    const ACTIONS: [RecoveryAction; 7] = [
        RecoveryAction::Retransmit,
        RecoveryAction::DiscardCorrupt,
        RecoveryAction::DiscardDuplicate,
        RecoveryAction::DiscardStale,
        RecoveryAction::BoundaryFallback,
        RecoveryAction::DeclareDead,
        RecoveryAction::RestoreCheckpoint,
    ];
    for action in ACTIONS {
        let n = log.recoveries_of(action);
        if n > 0 {
            out.push_str(&format!("  recovery {action:<18} × {n}\n"));
        }
    }
    out.push_str(&log.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use bonsai_ic::plummer_sphere;

    fn sample_cluster() -> Cluster {
        Cluster::new(plummer_sphere(6000, 9), 4, ClusterConfig::default())
    }

    #[test]
    fn timelines_cover_every_rank_and_phase() {
        let c = sample_cluster();
        let tls = step_timelines(&c);
        assert_eq!(tls.len(), 4);
        for tl in &tls {
            assert_eq!(tl.gpu.len(), 6);
            // phases are contiguous and ordered
            for w in tl.gpu.windows(2) {
                assert!((w[0].2 - w[1].1).abs() < 1e-12, "gap between phases");
            }
            assert!(tl.makespan() > 0.0);
        }
    }

    #[test]
    fn comm_is_mostly_hidden() {
        let c = sample_cluster();
        let tls = step_timelines(&c);
        for tl in &tls {
            let f = tl.hidden_comm_fraction();
            assert!(
                f > 0.5,
                "LET comm should be mostly hidden behind gravity, got {f}"
            );
        }
    }

    #[test]
    fn fault_summary_clean_step() {
        let c = sample_cluster();
        let s = render_fault_summary(&c.last_measurements);
        assert!(s.contains("clean step"), "{s}");
    }

    #[test]
    fn fault_summary_lists_injections_and_recoveries() {
        use bonsai_net::{FaultPlan, Injection, MsgKind};
        // Force one boundary-frame drop in the first stepped epoch; the
        // receiver must retransmit-recover and the summary must say so.
        let plan = FaultPlan::new(42).with_injection(Injection {
            epoch: 2,
            from: Some(0),
            to: Some(1),
            kind: Some(MsgKind::Boundary),
            fault: FaultKind::Drop,
        });
        let mut c = Cluster::with_faults(
            plummer_sphere(1200, 5),
            3,
            ClusterConfig::default(),
            plan,
            None,
        );
        c.step();
        let s = render_fault_summary(&c.last_measurements);
        assert!(s.contains("injected drop"), "{s}");
        assert!(s.contains("recovery retransmit"), "{s}");
        assert!(s.contains("inject"), "{s}");
    }

    #[test]
    fn gantt_renders_all_rows() {
        let c = sample_cluster();
        let art = render_gantt(&step_timelines(&c), 60);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4 * 2 + 1); // two lanes per rank + legend
        assert!(art.contains('L') && art.contains('R'));
        // every timeline row is the same width
        for l in &lines[..8] {
            assert_eq!(l.chars().count(), "rank  0 GPU  ".chars().count() + 60);
        }
    }
}
