//! Per-rank step timelines and the ASCII Gantt chart of the overlap story.
//!
//! §III-B2's central engineering claim is *concurrency*: while the GPU
//! grinds the local tree, the CPU threads build LETs and the network moves
//! them, so only a small residue of communication is ever exposed. This
//! module reconstructs that schedule from a step's measured quantities and
//! renders it, making the claim visible:
//!
//! ```text
//! rank 0 GPU  SSDDBBPLLLLLLLLLLRRRRRRRR......
//! rank 0 COMM ......mmmmmm...................
//! ```
//!
//! (`S` sort, `D` domain update, `B` build, `P` properties, `L` local
//! gravity, `R` remote/LET gravity, `m` LET communication, `.` idle.)

use crate::cluster::{Cluster, StepMeasurements};
use bonsai_net::{FaultKind, RecoveryAction};
use bonsai_obs::{interval_union, overlap_with_union, Lane};

/// One rank's reconstructed schedule (seconds from step start).
#[derive(Clone, Debug)]
pub struct RankTimeline {
    /// `(label, start, end)` for every busy interval on the GPU lane.
    pub gpu: Vec<(String, f64, f64)>,
    /// `(label, start, end)` for the communication lane.
    pub comm: Vec<(String, f64, f64)>,
    /// `(label, start, end)` for host-CPU bookkeeping (load balance,
    /// orchestration) and cross-rank barrier waits.
    pub cpu: Vec<(String, f64, f64)>,
}

impl RankTimeline {
    /// Wall-clock span of the timeline.
    pub fn makespan(&self) -> f64 {
        self.gpu
            .iter()
            .chain(self.comm.iter())
            .chain(self.cpu.iter())
            .map(|(_, _, e)| *e)
            .fold(0.0, f64::max)
    }

    /// Fraction of LET communication hidden under GPU work. Exposure is
    /// measured against the union of GPU busy intervals, so comm that
    /// straddles a gap between GPU phases is correctly counted as exposed.
    pub fn hidden_comm_fraction(&self) -> f64 {
        let comm_total: f64 = self.comm.iter().map(|(_, s, e)| e - s).sum();
        if comm_total <= 0.0 {
            return 1.0;
        }
        let union = interval_union(self.gpu.iter().map(|(_, s, e)| (*s, *e)).collect());
        let hidden: f64 = self
            .comm
            .iter()
            .map(|(_, s, e)| overlap_with_union(*s, *e, &union))
            .sum();
        (hidden / comm_total).clamp(0.0, 1.0)
    }
}

/// Per-rank timelines of the most recent recorded epoch: a view over the
/// cluster's span store, re-based to step-relative seconds. The spans were
/// recorded with the cluster's *configured* device and machine-rate models,
/// so a Titan cluster's timeline shows Titan's slower host phases.
pub fn step_timelines(cluster: &Cluster) -> Vec<RankTimeline> {
    let store = cluster.trace();
    let Some(step) = store.last_step() else {
        return Vec::new();
    };
    let in_step: Vec<_> = store.spans().iter().filter(|s| s.step == step).collect();
    let base = in_step.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let mut rank_ids: Vec<u32> = in_step.iter().map(|s| s.rank).collect();
    rank_ids.sort_unstable();
    rank_ids.dedup();
    rank_ids
        .into_iter()
        .map(|r| {
            let mut gpu = Vec::new();
            let mut comm = Vec::new();
            let mut cpu = Vec::new();
            for s in store.spans_for(r, step) {
                let item = (s.name.clone(), s.start - base, s.end - base);
                match s.lane {
                    Lane::Gpu => gpu.push(item),
                    Lane::Comm => comm.push(item),
                    Lane::Cpu => cpu.push(item),
                }
            }
            gpu.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            comm.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            cpu.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            RankTimeline { gpu, comm, cpu }
        })
        .collect()
}

/// Render timelines as an ASCII Gantt chart, `width` characters across.
pub fn render_gantt(timelines: &[RankTimeline], width: usize) -> String {
    let makespan = timelines
        .iter()
        .map(RankTimeline::makespan)
        .fold(0.0, f64::max)
        .max(1e-12);
    let glyph = |label: &str| -> char {
        match label {
            "sort" => 'S',
            "domain" => 'D',
            "build" => 'B',
            "props" => 'P',
            "local" => 'L',
            "lets" => 'R',
            "integrate" => 'I',
            "balance" => 'b',
            "orchestrate" => 'o',
            "wait" => 'w',
            "let-comm" => 'm',
            "recovery" => 'r',
            _ => '?',
        }
    };
    let mut out = String::new();
    for (r, tl) in timelines.iter().enumerate() {
        for (lane_name, lane) in [("GPU ", &tl.gpu), ("COMM", &tl.comm), ("CPU ", &tl.cpu)] {
            let mut row = vec!['.'; width];
            for (label, s, e) in lane {
                let c0 = ((s / makespan) * width as f64) as usize;
                let c1 = (((e / makespan) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                    *cell = glyph(label);
                }
            }
            out.push_str(&format!("rank {r:>2} {lane_name} "));
            out.extend(row);
            out.push('\n');
        }
    }
    out.push_str(
        "S sort  D domain  B build  P props  L local gravity  R LET gravity  I integrate  \
         b balance  o orchestrate  w wait  m LET comm\n",
    );
    out
}

/// Summarize the fault activity of a step's measurements: headline counts,
/// per-kind / per-action tallies, then the chronological event log from the
/// step's [`bonsai_net::FaultLog`] slice.
pub fn render_fault_summary(meas: &StepMeasurements) -> String {
    let log = &meas.faults;
    if log.is_clean() && meas.retransmit_bytes == 0 && meas.degraded_lets == 0 {
        return "faults: clean step (nothing injected, nothing recovered)\n".to_string();
    }
    let mut out = format!(
        "faults: {} injected, {} recovery actions, {} B retransmitted, {} degraded LET walks\n",
        log.injected.len(),
        log.recoveries.len(),
        meas.retransmit_bytes,
        meas.degraded_lets
    );
    const KINDS: [FaultKind; 8] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Stall,
        FaultKind::Crash,
    ];
    for kind in KINDS {
        let n = log.injected_of(kind);
        if n > 0 {
            out.push_str(&format!("  injected {kind:<10} × {n}\n"));
        }
    }
    const ACTIONS: [RecoveryAction; 8] = [
        RecoveryAction::Retransmit,
        RecoveryAction::DiscardCorrupt,
        RecoveryAction::DiscardDuplicate,
        RecoveryAction::DiscardStale,
        RecoveryAction::BoundaryFallback,
        RecoveryAction::DeclareDead,
        RecoveryAction::RestoreCheckpoint,
        RecoveryAction::ViewChange,
    ];
    for action in ACTIONS {
        let n = log.recoveries_of(action);
        if n > 0 {
            out.push_str(&format!("  recovery {action:<18} × {n}\n"));
        }
    }
    out.push_str(&log.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use bonsai_ic::plummer_sphere;

    fn sample_cluster() -> Cluster {
        Cluster::new(plummer_sphere(6000, 9), 4, ClusterConfig::default())
    }

    #[test]
    fn timelines_cover_every_rank_and_phase() {
        let c = sample_cluster();
        let tls = step_timelines(&c);
        assert_eq!(tls.len(), 4);
        for tl in &tls {
            assert_eq!(tl.gpu.len(), 7);
            // phases are contiguous and ordered
            for w in tl.gpu.windows(2) {
                assert!((w[0].2 - w[1].1).abs() < 1e-12, "gap between phases");
            }
            // CPU bookkeeping tail follows the device phases.
            assert!(tl.cpu.iter().any(|(l, _, _)| l == "balance"));
            assert!(tl.cpu.iter().any(|(l, _, _)| l == "orchestrate"));
            assert!(tl.makespan() > 0.0);
        }
    }

    #[test]
    fn comm_is_mostly_hidden() {
        let c = sample_cluster();
        let tls = step_timelines(&c);
        for tl in &tls {
            let f = tl.hidden_comm_fraction();
            assert!(
                f > 0.5,
                "LET comm should be mostly hidden behind gravity, got {f}"
            );
        }
    }

    #[test]
    fn hidden_fraction_counts_gaps_between_gpu_intervals() {
        // Regression: comm straddling a gap between GPU busy intervals must
        // count the gap as exposed. The old computation measured exposure
        // only past the *end* of GPU work and reported 1.0 here.
        let tl = RankTimeline {
            gpu: vec![
                ("local".to_string(), 0.0, 1.0),
                ("lets".to_string(), 2.0, 3.0),
            ],
            comm: vec![("let-comm".to_string(), 0.5, 2.5)],
            cpu: Vec::new(),
        };
        let f = tl.hidden_comm_fraction();
        // 2.0 s of comm, hidden only under [0.5,1.0] and [2.0,2.5] = 1.0 s.
        assert!((f - 0.5).abs() < 1e-12, "union-based hidden fraction, got {f}");
    }

    #[test]
    fn timelines_use_configured_machine_rates() {
        // Regression: the domain phase must be charged at the configured
        // machine's host-CPU rate, not a hard-coded constant. Titan's
        // slower Opteron (cpu_let_rate 0.55) stretches it by 1/0.55.
        let ic = plummer_sphere(3000, 11);
        let daint = Cluster::new(ic.clone(), 2, ClusterConfig::default());
        let mut cfg = ClusterConfig::default();
        cfg.machine = bonsai_net::TITAN;
        let titan = Cluster::new(ic, 2, cfg);
        let dur = |c: &Cluster, name: &str| {
            step_timelines(c)[0]
                .gpu
                .iter()
                .find(|(l, _, _)| l == name)
                .map(|(_, s, e)| e - s)
                .expect("phase present")
        };
        let ratio = dur(&titan, "domain") / dur(&daint, "domain");
        assert!(
            (ratio - 1.0 / bonsai_net::TITAN.cpu_let_rate).abs() < 1e-9,
            "domain phase ratio {ratio}"
        );
        // The GPU-side phases are machine-independent (same K20X model).
        assert!((dur(&titan, "sort") - dur(&daint, "sort")).abs() < 1e-12);
    }

    #[test]
    fn fault_summary_clean_step() {
        let c = sample_cluster();
        let s = render_fault_summary(&c.last_measurements);
        assert!(s.contains("clean step"), "{s}");
    }

    #[test]
    fn fault_summary_lists_injections_and_recoveries() {
        use bonsai_net::{FaultPlan, Injection, MsgKind};
        // Force one boundary-frame drop in the first stepped epoch; the
        // receiver must retransmit-recover and the summary must say so.
        let plan = FaultPlan::new(42).with_injection(Injection {
            epoch: 2,
            from: Some(0),
            to: Some(1),
            kind: Some(MsgKind::Boundary),
            fault: FaultKind::Drop,
        });
        let mut c = Cluster::with_faults(
            plummer_sphere(1200, 5),
            3,
            ClusterConfig::default(),
            plan,
            None,
        );
        c.step();
        let s = render_fault_summary(&c.last_measurements);
        assert!(s.contains("injected drop"), "{s}");
        assert!(s.contains("recovery retransmit"), "{s}");
        assert!(s.contains("inject"), "{s}");
    }

    #[test]
    fn gantt_renders_all_rows() {
        let c = sample_cluster();
        let art = render_gantt(&step_timelines(&c), 60);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4 * 3 + 1); // three lanes per rank + legend
        assert!(art.contains('L') && art.contains('R'));
        // every timeline row is the same width
        for l in &lines[..12] {
            assert_eq!(l.chars().count(), "rank  0 GPU  ".chars().count() + 60);
        }
    }
}
