//! Cost-model attribution: measured per-phase seconds vs the Table II
//! analytic model.
//!
//! The scaling model ([`crate::model::ScalingModel`]) predicts every phase
//! of a step from two scalars (ranks, particles/GPU). A measured
//! [`StepBreakdown`] carries the same twelve phases. Attribution is then
//! just a signed subtraction per term: `residual = measured − modelled`.
//! A positive residual names a phase running slower than the calibrated
//! model says it should — exactly the per-term diagnosis the paper's
//! authors perform by hand when a run misses the Table II column.
//!
//! The residual type itself lives in `bonsai-obs` ([`TermResidual`]) so the
//! bench layer can render residual tables without depending on the
//! simulator; this module supplies the simulator-side constructor.

use bonsai_obs::TermResidual;

use crate::breakdown::{StepBreakdown, PHASES};
use crate::model::ScalingModel;

/// Fit a measured breakdown against the analytic model evaluated at the
/// same (ranks, particles/GPU) point, returning one signed residual per
/// Table II phase, in [`PHASES`] presentation order.
///
/// Residuals on a breakdown the model itself produced are exactly zero —
/// a property the tests pin — so every nonzero entry on a real run is
/// genuine measurement-vs-model disagreement, not plumbing noise.
pub fn cost_model_attribution(
    measured: &StepBreakdown,
    model: &ScalingModel,
) -> Vec<TermResidual> {
    let modelled = model.predict(measured.gpus, measured.particles_per_gpu);
    let m = measured.phase_times();
    let f = modelled.phase_times();
    PHASES
        .iter()
        .map(|&ph| TermResidual {
            term: ph.to_string(),
            measured_s: m.get(ph),
            modelled_s: f.get(ph),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use bonsai_ic::plummer_sphere;
    use bonsai_obs::{prom, roofline, telescoping_error};

    #[test]
    fn residuals_vanish_on_a_model_generated_breakdown() {
        let model = ScalingModel::piz_daint();
        let b = model.predict(256, 500_000);
        let res = cost_model_attribution(&b, &model);
        assert_eq!(res.len(), PHASES.len());
        for r in &res {
            assert_eq!(
                r.residual_s(),
                0.0,
                "phase {} should have an exactly zero residual",
                r.term
            );
        }
        // Order is the Table II presentation order.
        let names: Vec<&str> = res.iter().map(|r| r.term.as_str()).collect();
        assert_eq!(names, PHASES.to_vec());
    }

    #[test]
    fn residuals_are_signed_measured_minus_modelled() {
        let model = ScalingModel::titan();
        let mut b = model.predict(64, 200_000);
        b.gravity_local *= 1.5; // a sandbagged kernel runs slow...
        b.sort *= 0.5; // ...and a miracle sort runs fast.
        let res = cost_model_attribution(&b, &model);
        let by_name = |n: &str| res.iter().find(|r| r.term == n).unwrap();
        assert!(by_name("gravity_local").residual_s() > 0.0);
        assert!(by_name("sort").residual_s() < 0.0);
        assert_eq!(by_name("tree_construction").residual_s(), 0.0);
    }

    #[test]
    fn cluster_trace_satisfies_the_roofline_invariants() {
        let ic = plummer_sphere(1500, 11);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        c.step();
        let points = roofline(c.trace());
        assert!(
            !points.is_empty(),
            "a stepped cluster must yield roofline points"
        );
        // Every named GPU kernel appears with its coordinates populated.
        for p in &points {
            assert!(p.seconds > 0.0, "{}: zero seconds", p.kernel);
            assert!(p.flops > 0.0, "{}: zero flops", p.kernel);
            let ceiling = p.binding_ceiling_gflops();
            assert!(ceiling.is_finite() && ceiling > 0.0);
            // The central invariant: attained never exceeds the binding
            // ceiling (the model prices kernels *under* the roof).
            assert!(
                p.attained_gflops() <= ceiling * (1.0 + 1e-9),
                "{} rank {}: attained {:.1} above its {} ceiling {:.1}",
                p.kernel,
                p.rank,
                p.attained_gflops(),
                p.binding_ceiling(),
                ceiling
            );
            let frac = p.attained_fraction();
            assert!((0.0..=1.0 + 1e-9).contains(&frac));
        }
        // Gravity kernels carry modelled occupancy below 1; streaming
        // phases are charged at full residency.
        assert!(points
            .iter()
            .any(|p| p.kernel == "local" || p.kernel == "lets"));
        // Per-kernel seconds telescope to the per-(rank, step) GPU span
        // extent: the lanes are gap-free and overlap-free by construction.
        assert!(
            telescoping_error(c.trace()) < 1e-9,
            "GPU lane spans must telescope"
        );
    }

    #[test]
    fn membership_counters_flow_through_the_prometheus_exporter() {
        let ic = plummer_sphere(1200, 13);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        c.admit_ranks(1);
        c.retire_ranks(1);
        let text = prom::prometheus_text(c.metrics());
        assert!(text.contains("bonsai_membership_view_changes_total 2"));
        assert!(text.contains("bonsai_membership_epoch"));
        assert!(text.contains("bonsai_membership_world 3"));
        assert!(text.contains("bonsai_membership_migrated_particles_total"));
        assert!(text.contains("bonsai_membership_migrated_bytes_total"));
        // The view-change instants are on the trace, next to the spans.
        let grew = c
            .trace()
            .instants()
            .iter()
            .any(|i| i.name == "membership:view-change:grow");
        let shrank = c
            .trace()
            .instants()
            .iter()
            .any(|i| i.name == "membership:view-change:shrink");
        assert!(grew && shrank, "view-change instants missing from trace");
    }
}
