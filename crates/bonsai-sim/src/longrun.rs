//! Long-run monitoring: the cluster-side wiring of `bonsai-obs`'s
//! longitudinal layer (time series + health rules + flight recorder).
//!
//! The paper's deliverable is a *sustained* multi-thousand-step run, and
//! sustaining it means watching the run-level signals — energy drift,
//! balancer residual, comm exposure, achieved Gflops, fault-recovery
//! pressure — while the run is in flight. [`LongRunMonitor`] rides inside
//! [`Cluster::step`]: each step it derives those signals from the step's
//! measurements, writes them as step-scoped gauges, samples *every* gauge
//! into a bounded [`SeriesStore`], evaluates the [`HealthMonitor`] rules,
//! and keeps a [`FlightRecorder`] ring of full-fidelity spans so an alert
//! can freeze a Perfetto-loadable incident window.
//!
//! The monitor also prunes the live trace down to the flight window
//! (opt-out via [`LongRunConfig::prune_trace`]) — without that, a 10k-step
//! run's span store grows without bound.

use crate::breakdown::StepBreakdown;
use crate::cluster::Cluster;
use crate::trace::step_timelines;
use bonsai_analysis::EnergyReport;
use bonsai_obs::health::{default_rules, AlertEvent, AlertKind, HealthMonitor, Rule};
use bonsai_obs::timeseries::{SeriesConfig, SeriesStore};
use bonsai_obs::flight::{FlightRecorder, Incident};
use bonsai_obs::Lane;

/// Configuration of the long-run monitor.
#[derive(Clone, Debug)]
pub struct LongRunConfig {
    /// Bins per metric series (downsampling bound), clamped to ≥ 8.
    pub max_bins: usize,
    /// Alert rules to evaluate each step.
    pub rules: Vec<Rule>,
    /// Steps of full-fidelity spans the flight recorder keeps.
    pub flight_window: usize,
    /// Incidents to freeze at most (each owns a copy of the window).
    pub max_incidents: usize,
    /// Prune the live trace down to the flight window each step. Leave on
    /// for long runs; turn off when the caller wants the full trace.
    pub prune_trace: bool,
}

impl Default for LongRunConfig {
    fn default() -> Self {
        Self {
            max_bins: 512,
            rules: default_rules(),
            flight_window: 8,
            max_incidents: 4,
            prune_trace: true,
        }
    }
}

/// Per-run longitudinal state: series store, rule engine, flight recorder,
/// frozen incidents, and the energy baseline drift is measured against.
#[derive(Clone, Debug)]
pub struct LongRunMonitor {
    cfg: LongRunConfig,
    series: SeriesStore,
    health: HealthMonitor,
    flight: FlightRecorder,
    baseline: EnergyReport,
    incidents: Vec<Incident>,
}

impl LongRunMonitor {
    /// Monitor with `baseline` as the energy-conservation reference
    /// (normally the cluster's energy at enable time).
    pub fn new(cfg: LongRunConfig, baseline: EnergyReport) -> Self {
        Self {
            series: SeriesStore::new(SeriesConfig {
                max_bins: cfg.max_bins,
            }),
            health: HealthMonitor::new(cfg.rules.clone()),
            flight: FlightRecorder::new(cfg.flight_window),
            baseline,
            incidents: Vec::new(),
            cfg,
        }
    }

    /// The bounded per-metric run histories.
    pub fn series(&self) -> &SeriesStore {
        &self.series
    }

    /// The rule engine (alert log, open rules, worst severity).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Incidents frozen so far, in firing order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The energy baseline drift is measured against.
    pub fn baseline(&self) -> &EnergyReport {
        &self.baseline
    }

    /// The configuration the monitor was enabled with.
    pub fn config(&self) -> &LongRunConfig {
        &self.cfg
    }

    /// One step's longitudinal bookkeeping; called by [`Cluster::step`]
    /// after the step completes (monitor taken out of the cluster, so
    /// `cluster` is freely borrowable). Returns the alert transitions the
    /// step fired — the signal the autoscaling policy scales on.
    pub(crate) fn observe(&mut self, cluster: &mut Cluster, b: &StepBreakdown) -> Vec<AlertEvent> {
        let step = cluster.step_count();
        let epoch = cluster.current_epoch();

        // Derived run-level signals for this step, written as step-scoped
        // gauges so they reset with everything else.
        let drift = cluster.energy_report().drift_from(&self.baseline);
        let meas = &cluster.last_measurements;
        let flops: Vec<f64> = meas
            .counts_local
            .iter()
            .zip(&meas.counts_lets)
            .map(|(l, t)| (l.flops() + t.flops()) as f64)
            .collect();
        let residual = {
            let mean = flops.iter().sum::<f64>() / flops.len().max(1) as f64;
            let max = flops.iter().copied().fold(0.0, f64::max);
            if mean > 0.0 {
                max / mean
            } else {
                1.0
            }
        };
        let timelines = step_timelines(cluster);
        let hidden = if timelines.is_empty() {
            1.0
        } else {
            timelines
                .iter()
                .map(|t| t.hidden_comm_fraction())
                .sum::<f64>()
                / timelines.len() as f64
        };
        let recoveries = meas.faults.recoveries.len() as f64;
        let degraded = meas.degraded_lets as f64;
        let retransmit = meas.retransmit_bytes as f64;
        let imbalance = meas.imbalance;
        let derived = [
            ("bonsai_energy_drift", drift),
            ("bonsai_flop_residual", residual),
            ("bonsai_hidden_comm_fraction", hidden),
            ("bonsai_gpu_gflops", b.gpu_tflops() * 1e3),
            ("bonsai_step_seconds", b.total()),
            ("bonsai_recovery_actions", recoveries),
            ("bonsai_degraded_lets", degraded),
            ("bonsai_retransmit_bytes", retransmit),
            ("bonsai_particle_imbalance", imbalance),
        ];
        for (name, v) in derived {
            cluster.registry_mut().step_gauge_set(name, &[], v);
        }

        // Sample every gauge of the step into the bounded series store and
        // feed the rule engine (rules filter by metric name).
        let mut fired: Vec<AlertEvent> = Vec::new();
        let samples: Vec<(String, f64)> = cluster
            .metrics()
            .gauges()
            .map(|(k, v)| (k.render(), v))
            .collect();
        for (name, v) in &samples {
            self.series.record(name, step, *v);
            fired.extend(self.health.observe(step, name, *v));
        }

        // Alert transitions become instants on the trace (rank 0's CPU
        // lane, at the end of the completed epoch) *before* the flight
        // recorder copies the step, so incident windows carry them.
        if !fired.is_empty() {
            let at = cluster.trace().makespan();
            for ev in &fired {
                let name = format!("alert:{}:{}", ev.kind.name(), ev.rule);
                cluster
                    .trace_mut()
                    .instant(0, epoch, Lane::Cpu, name, at)
                    .args
                    .push(("detail", bonsai_obs::ArgValue::Str(ev.detail.clone())));
            }
        }
        self.flight.record_step(cluster.trace(), epoch);
        for ev in &fired {
            if ev.kind == AlertKind::Open && self.incidents.len() < self.cfg.max_incidents {
                self.incidents.push(self.flight.freeze(self.incidents.len(), ev));
            }
        }
        if self.cfg.prune_trace {
            let min = epoch.saturating_sub(self.cfg.flight_window.max(1) as u64 - 1);
            cluster.trace_mut().retain_steps(min);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use bonsai_ic::plummer_sphere;

    fn small_cluster() -> Cluster {
        let ic = plummer_sphere(256, 42);
        Cluster::new(
            ic,
            2,
            ClusterConfig {
                dt: 1.0e-3,
                ..ClusterConfig::default()
            },
        )
    }

    #[test]
    fn monitor_samples_every_step_and_prunes_the_trace() {
        let mut c = small_cluster();
        c.enable_longrun(LongRunConfig {
            flight_window: 3,
            ..LongRunConfig::default()
        });
        for _ in 0..6 {
            c.step();
        }
        let lr = c.longrun().expect("monitor enabled");
        // Every derived signal has one sample per step.
        for name in [
            "bonsai_energy_drift",
            "bonsai_flop_residual",
            "bonsai_hidden_comm_fraction",
            "bonsai_gpu_gflops",
            "bonsai_step_seconds",
        ] {
            let s = lr.series().series(name).unwrap_or_else(|| {
                panic!("missing series {name}: have {:?}", lr.series().names())
            });
            assert_eq!(s.count(), 6, "{name}");
        }
        // Per-phase gauges are sampled too (rendered with labels).
        assert!(lr
            .series()
            .names()
            .iter()
            .any(|n| n.starts_with("bonsai_step_phase_seconds{")));
        // Trace pruned to the flight window: only the last 3 epochs remain.
        let steps: Vec<u64> = {
            let mut s: Vec<u64> = c.trace().spans().iter().map(|sp| sp.step).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(steps, vec![5, 6, 7], "epochs kept (initial eval = epoch 1)");
        // A clean Plummer run opens nothing.
        assert!(c.longrun().unwrap().health().events().is_empty());
        assert!(c.longrun().unwrap().incidents().is_empty());
    }

    #[test]
    fn breakdown_from_metrics_survives_the_monitor() {
        // The derived step-scoped gauges must not perturb the reduction
        // that rebuilds the breakdown from the registry.
        let mut c = small_cluster();
        c.enable_longrun(LongRunConfig::default());
        let b = c.step();
        let rebuilt = c.breakdown_from_metrics();
        assert!((b.total() - rebuilt.total()).abs() < 1e-12);
    }

    #[test]
    fn monitor_is_deterministic() {
        let run = || {
            let mut c = small_cluster();
            c.enable_longrun(LongRunConfig::default());
            for _ in 0..4 {
                c.step();
            }
            let lr = c.take_longrun().unwrap();
            let mut dump = String::new();
            for (name, s) in lr.series().iter() {
                dump.push_str(&format!("{name} {:?}\n", s.bins()));
            }
            dump.push_str(&lr.health().render_log());
            dump
        };
        assert_eq!(run(), run());
    }
}
