//! # bonsai-sim
//!
//! The distributed half of the reproduction: logical MPI ranks executing the
//! full Bonsai step of §III-B on real data, plus the calibrated machine
//! model that extrapolates the measured algorithm to the paper's 18600-GPU
//! scale.
//!
//! Three layers:
//!
//! * [`cluster`] — the lock-step cluster simulator. Every phase of the
//!   paper's step runs for real: two-level sample-sort domain decomposition,
//!   particle exchange, per-rank tree builds over a shared global key map,
//!   boundary-tree "allgather", sender-side sufficiency checks, dedicated
//!   LET construction for near neighbours, and per-rank force walks whose
//!   results are *provably* equivalent to a single-process evaluation.
//!   Byte volumes and interaction counts are measured, then charged to the
//!   GPU/network models to produce simulated per-phase times (Table II
//!   rows).
//! * [`live`] — the same force computation with one OS thread per rank and
//!   real serialized messages over `bonsai-net`'s crossbeam fabric: the
//!   proof that the protocol works without a global orchestrator.
//!
//! Every cluster payload crosses the fabric in checksummed envelopes, and
//! [`Cluster::with_faults`] accepts a seeded `bonsai-net` fault plan: the
//! step detects and recovers from dropped, duplicated, reordered, delayed,
//! truncated and bit-flipped messages, degrades gracefully when dedicated
//! LETs are lost, and rolls back to the last [`checkpoint`] when a rank
//! crashes — with every event recorded in an auditable fault log.
//! * [`model`] — the calibrated scaling model: given a machine, rank count
//!   and particles/GPU, predict every row of Table II and every curve of
//!   Fig. 4, including the 24.77 / 33.49 Pflops headline numbers.
//!
//! ```
//! use bonsai_sim::ScalingModel;
//!
//! // The record configuration: 18600 Titan GPUs × 13M particles.
//! let b = ScalingModel::titan().predict(18600, 13_000_000);
//! let app_pflops = b.total_flops() / b.total() / 1e15;
//! assert!((app_pflops - 24.77).abs() / 24.77 < 0.05); // §VI-D headline
//! assert!((b.total() - 4.77).abs() < 0.3);            // Table II step time
//! ```

#![deny(missing_docs)]

pub mod autoscale;
pub mod breakdown;
pub mod checkpoint;
pub mod cluster;
pub mod live;
pub mod longrun;
pub mod model;
pub mod profile;
pub mod stream;
pub mod trace;

pub use autoscale::{AutoscaleConfig, AutoscalePolicy, ScaleDecision};
pub use breakdown::StepBreakdown;
pub use checkpoint::Checkpoint;
pub use cluster::{Cluster, ClusterConfig, RecoveryConfig};
pub use longrun::{LongRunConfig, LongRunMonitor};
pub use model::ScalingModel;
pub use profile::cost_model_attribution;
pub use stream::{StreamConfig, StreamTap};
