//! The lock-step cluster simulator: the paper's full distributed step
//! (§III-B) executed for real on logical ranks.
//!
//! Every phase manipulates real data — keys are sampled and cut, particles
//! migrate, boundary trees and LETs are built, serialized and re-parsed, and
//! per-rank force walks consume local trees plus remote LETs. What is
//! *simulated* is only time: measured interaction counts and byte volumes
//! are charged to the GPU model (`bonsai-gpu`) and network model
//! (`bonsai-net`) of the configured machine, yielding a Table II style
//! [`StepBreakdown`] per step.
//!
//! Every inter-rank payload crosses the real message fabric inside a
//! checksummed envelope, through a [`FaultyEndpoint`] that can inject a
//! seeded [`FaultPlan`]: drops, duplicates, reorders, delays, truncation,
//! bit flips, rank stalls and hard crashes. The step survives them —
//! invalid frames are discarded and retransmitted with bounded attempts,
//! lost dedicated LETs degrade gracefully to walking the already-held
//! boundary tree, and a crashed rank is detected via missing heartbeats and
//! replaced by rolling the cluster back to its last checkpoint. Every
//! injected fault and every recovery action lands in the [`FaultLog`], so
//! a chaos run can be audited end to end.
//!
//! The result is provably faithful: tests assert the distributed forces
//! agree with a direct-summation reference at the MAC-bounded error level,
//! that ranks respect the 30% load cap, and that distant ranks reuse the
//! broadcast boundary trees as LETs while only near neighbours receive
//! dedicated ones — the communication-avoidance core of the paper.

use crate::breakdown::StepBreakdown;
use crate::checkpoint;
use bonsai_domain::exchange::{particles_from_bytes, particles_to_bytes, ExchangePlan};
use bonsai_domain::letbuild::{boundary_sufficient_for, build_let};
use bonsai_domain::load::enforce_particle_cap;
use bonsai_domain::sampling::parallel_cuts;
use bonsai_domain::{boundary_tree, LetTree, Migration};
use bonsai_gpu::{
    GpuModel, KernelVariant, BUILD_COST, DOMAIN_COST, INTEGRATE_COST, K20X, PROPS_COST, SORT_COST,
};
use bonsai_net::envelope;
use bonsai_net::fault::{
    FaultEvent, FaultKind, FaultLog, FaultPlan, FaultyEndpoint, RecoveryAction, RecoveryEvent,
    SharedFaultLog,
};
use bonsai_net::flow::{FlowConservation, FlowLedger, SharedFlowLedger};
use bonsai_net::membership::{self, MembershipEvent, MembershipLog, View, ViewChange};
use bonsai_net::obs::FlowClock;
use bonsai_net::{Fabric, MachineSpec, MsgKind, NetworkModel, PIZ_DAINT};
use bonsai_obs::analysis::waits::{self, FlowSummary};
use bonsai_obs::{ArgValue, FlowPhase, Lane, MetricsRegistry, TraceStore};
use bonsai_sfc::{KeyMap, KeyRange};
use bonsai_tree::build::{Tree, TreeParams};
use bonsai_tree::stats::record_walk_counts;
use bonsai_tree::walk::{self, WalkParams};
use bonsai_tree::{Forces, InteractionCounts, Particles};
use bonsai_util::timer::PhaseTimes;
use bonsai_util::{Aabb, Vec3};
use bytes::Bytes;
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Retransmission attempts for exchanges that must complete (heartbeat /
/// bounds, particle migration, boundary allgather). A peer that stays
/// silent through every attempt is declared dead.
const MAX_RETRIES_HARD: u32 = 4;

/// Retransmission attempts for dedicated LETs. Cheaper to give up early:
/// the receiver already holds the sender's boundary tree and can walk that
/// instead (graceful degradation, counted per step).
const MAX_RETRIES_LET: u32 = 2;

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Opening angle θ.
    pub theta: f64,
    /// Plummer softening.
    pub eps: f64,
    /// Time step.
    pub dt: f64,
    /// Gravitational constant.
    pub g: f64,
    /// Tree parameters (NLEAF, curve, group size).
    pub tree: TreeParams,
    /// Machine whose GPU/network models are charged.
    pub machine: MachineSpec,
    /// Coarse sampling count per rank (rate R1 of §III-B1).
    pub sample_s1: usize,
    /// Fine sampling count per rank (rate R2).
    pub sample_s2: usize,
    /// Particle-count cap relative to mean (paper: 1.3).
    pub cap: f64,
    /// Execution lanes for the in-process thread pool the gravity phases
    /// run on. `None` uses the process-global pool (sized by the
    /// `BONSAI_THREADS` environment variable, falling back to the
    /// machine's available parallelism). Results are bit-identical for
    /// every setting — the pool's deterministic-reduction contract — so
    /// this only trades wall-clock time.
    pub threads: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            theta: 0.4,
            eps: 0.01,
            dt: 0.01,
            g: 1.0,
            tree: TreeParams::default(),
            machine: PIZ_DAINT,
            sample_s1: 16,
            sample_s2: 64,
            cap: 1.3,
            threads: None,
        }
    }
}

/// Where (and how often) the cluster checkpoints itself so a crashed rank
/// can be recovered by rollback.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Directory checkpoints are written to (created if missing).
    pub dir: PathBuf,
    /// Checkpoint every `every` completed steps (0 = only the initial one).
    pub every: u64,
}

/// How a target rank covers one remote source.
enum RemoteSource {
    /// The already-held boundary tree of rank `i` suffices (or serves as
    /// the fallback for a lost dedicated LET).
    Boundary,
    /// A dedicated LET arrived and is walked.
    Dedicated(LetTree),
}

/// Per-step measured quantities (what the real algorithm produced).
#[derive(Clone, Debug, Default)]
pub struct StepMeasurements {
    /// Serialized boundary-tree bytes per rank.
    pub boundary_bytes: Vec<usize>,
    /// Dedicated-LET bytes sent per rank.
    pub let_bytes_sent: Vec<usize>,
    /// Number of dedicated LETs each rank had to send.
    pub let_neighbors: Vec<usize>,
    /// Particle-exchange bytes sent per rank.
    pub exchange_bytes: Vec<usize>,
    /// Local-tree interaction counts per rank.
    pub counts_local: Vec<InteractionCounts>,
    /// LET interaction counts per rank.
    pub counts_lets: Vec<InteractionCounts>,
    /// `Cut` nodes that failed the receiver MAC (should be ≈ 0).
    pub forced_cuts: u64,
    /// Max/mean particle imbalance after the exchange.
    pub imbalance: f64,
    /// Keys each rank contributed to the two-level sample sort (the
    /// load-balance bookkeeping volume; 0 on single-rank runs).
    pub sampled_keys: Vec<usize>,
    /// Bytes retransmitted to recover lost or invalid frames.
    pub retransmit_bytes: usize,
    /// Dedicated LETs that never arrived and degraded to a boundary walk.
    pub degraded_lets: usize,
    /// Faults injected and recovery actions taken during the successful
    /// gravity epoch (failed epochs live in [`Cluster::fault_log`]).
    pub faults: FaultLog,
}

/// A cluster of logical ranks executing Bonsai's distributed step.
pub struct Cluster {
    /// Configuration.
    pub cfg: ClusterConfig,
    gpu: GpuModel,
    net: NetworkModel,
    /// Per-rank particles (SFC order after each step).
    ranks: Vec<Particles>,
    /// Per-rank accelerations aligned with `ranks`.
    acc: Vec<Vec<Vec3>>,
    /// Per-rank potentials aligned with `ranks`.
    pot: Vec<Vec<f64>>,
    /// Current domain partition.
    domains: Vec<KeyRange>,
    /// Per-rank flop weights from the previous gravity phase.
    weights: Vec<f64>,
    time: f64,
    steps: u64,
    /// One fabric endpoint per rank, with the fault plan applied on sends.
    endpoints: Vec<FaultyEndpoint>,
    plan: Arc<FaultPlan>,
    fault_log: SharedFaultLog,
    /// Shared flow ledger: the lifecycle of every envelope sealed on the
    /// fabric (seal → inject → retransmit → deliver | fallback | dead),
    /// appended in driver order so it is deterministic per plan.
    flows: SharedFlowLedger,
    /// Flow summaries (modeled times) of the most recent recorded epoch.
    last_flows: Vec<FlowSummary>,
    /// Monotonic gravity-phase counter. Never rewinds — a checkpoint
    /// rollback keeps advancing it, which is what makes stale frames from
    /// failed epochs detectable and scheduled crashes fire exactly once.
    epoch: u64,
    /// Ranks currently considered dead (crashed, awaiting recovery).
    dead: Vec<bool>,
    recovery: Option<RecoveryConfig>,
    /// Measurements of the most recent gravity phase.
    pub last_measurements: StepMeasurements,
    /// Span/event trace of every completed gravity epoch.
    trace: TraceStore,
    /// Metrics registry: monotonic counters over the whole run plus the
    /// most recent epoch's gauges.
    registry: MetricsRegistry,
    /// Global simulated clock base: completed epochs lay out sequentially.
    trace_clock: f64,
    /// Long-run monitor (time series + health rules + flight recorder),
    /// enabled via [`Cluster::enable_longrun`].
    longrun: Option<crate::longrun::LongRunMonitor>,
    /// Current membership view; `view.members[rank]` is the stable node id
    /// holding `rank`, so the view *is* the rank assignment.
    view: View,
    /// Audit log of every completed view change.
    membership: MembershipLog,
    /// When true, a crashed rank is *removed from the view* during
    /// recovery (the survivors re-decompose the checkpoint among
    /// themselves) instead of being resurrected at the same world size.
    elastic: bool,
    /// Health-driven scale-out/in policy, enabled via
    /// [`Cluster::enable_autoscale`]; consulted after every step's
    /// long-run observation.
    autoscale: Option<crate::autoscale::AutoscalePolicy>,
    /// In-run telemetry streaming tap, enabled via
    /// [`Cluster::enable_streaming`]; publishes each step's frames and
    /// self-meters the observability overhead.
    stream: Option<crate::stream::StreamTap>,
    /// Validation self-test hook: when true, view-change migrations
    /// silently discard every outbound migrant instead of shipping it —
    /// the sabotage the CI membership gate must catch through its particle
    /// conservation check. Never set in real runs.
    drop_migrants: bool,
    /// Dedicated thread pool when `cfg.threads` is set; `None` defers to
    /// the process-global pool. Shared via `Arc` so `step` can install it
    /// while mutably borrowing the rest of the cluster.
    pool: Option<Arc<rayon::ThreadPool>>,
}

impl Cluster {
    /// Distribute `all` particles over `p` ranks and evaluate initial forces.
    pub fn new(all: Particles, p: usize, cfg: ClusterConfig) -> Self {
        Self::with_faults(all, p, cfg, FaultPlan::new(0), None)
    }

    /// Like [`Cluster::new`], but with a fault-injection plan and an
    /// optional checkpoint-based recovery configuration. With an empty plan
    /// the endpoints are transparent (framed) pass-throughs and the step is
    /// byte-for-byte the fault-free algorithm.
    ///
    /// Crash faults require `recovery`: a rank death is survived by rolling
    /// back to the last checkpoint, so without one the step panics when a
    /// rank dies. Rank-level faults need `p > 1` to be observable.
    pub fn with_faults(
        all: Particles,
        p: usize,
        cfg: ClusterConfig,
        plan: FaultPlan,
        recovery: Option<RecoveryConfig>,
    ) -> Self {
        assert!(p > 0 && !all.is_empty());
        let pool = cfg.threads.map(|t| Arc::new(rayon::ThreadPool::new(t)));
        let gpu = GpuModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let net = NetworkModel::new(cfg.machine);
        let (ranks, domains) = seed_decomposition(&all, p, &cfg);
        let plan = Arc::new(plan);
        let fault_log = SharedFaultLog::new();
        let flows = SharedFlowLedger::new();
        let endpoints: Vec<FaultyEndpoint> = Fabric::new(p)
            .into_iter()
            .map(|ep| FaultyEndpoint::new(ep, plan.clone(), fault_log.clone(), flows.clone()))
            .collect();
        let mut cluster = Self {
            cfg,
            gpu,
            net,
            acc: vec![Vec::new(); p],
            pot: vec![Vec::new(); p],
            ranks,
            domains,
            weights: vec![1.0; p],
            time: 0.0,
            steps: 0,
            endpoints,
            plan,
            fault_log,
            flows,
            last_flows: Vec::new(),
            epoch: 0,
            dead: vec![false; p],
            recovery,
            last_measurements: StepMeasurements::default(),
            trace: TraceStore::new(),
            registry: MetricsRegistry::new(),
            trace_clock: 0.0,
            longrun: None,
            view: View::initial(p),
            membership: MembershipLog::new(),
            elastic: false,
            autoscale: None,
            stream: None,
            drop_migrants: false,
            pool,
        };
        // Checkpoint the initial conditions *before* the first force
        // computation: a rank can die (or be falsely declared dead under
        // extreme fault rates) in the very first gravity epoch, and
        // recovery needs something to roll back to.
        cluster.write_recovery_checkpoint();
        cluster.on_pool(Self::compute_forces_with_recovery);
        cluster
    }

    /// Reconstruct a cluster from exact-resume checkpoint state: per-rank
    /// particles, accelerations, potentials, domains and load weights are
    /// adopted verbatim, so no fresh decomposition or force phase runs and
    /// the next [`Cluster::step`] continues bit-for-bit where the
    /// checkpointed run would have. (Contrast with
    /// [`restore_cluster`](crate::checkpoint::restore_cluster), which
    /// re-decomposes and may change the rank count.)
    pub(crate) fn from_exact_state(
        ranks: Vec<Particles>,
        acc: Vec<Vec<Vec3>>,
        pot: Vec<Vec<f64>>,
        domains: Vec<KeyRange>,
        weights: Vec<f64>,
        time: f64,
        steps: u64,
        cfg: ClusterConfig,
    ) -> Self {
        let p = ranks.len();
        assert!(p > 0, "exact resume needs at least one rank");
        assert!(acc.len() == p && pot.len() == p && domains.len() == p && weights.len() == p);
        let cfg_threads = cfg.threads;
        let gpu = GpuModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let net = NetworkModel::new(cfg.machine);
        let plan = Arc::new(FaultPlan::new(0));
        let fault_log = SharedFaultLog::new();
        let flows = SharedFlowLedger::new();
        let endpoints: Vec<FaultyEndpoint> = Fabric::new(p)
            .into_iter()
            .map(|ep| FaultyEndpoint::new(ep, plan.clone(), fault_log.clone(), flows.clone()))
            .collect();
        Self {
            cfg,
            gpu,
            net,
            acc,
            pot,
            ranks,
            domains,
            weights,
            time,
            steps,
            endpoints,
            plan,
            fault_log,
            flows,
            last_flows: Vec::new(),
            epoch: 0,
            dead: vec![false; p],
            recovery: None,
            last_measurements: StepMeasurements::default(),
            trace: TraceStore::new(),
            registry: MetricsRegistry::new(),
            trace_clock: 0.0,
            longrun: None,
            view: View::initial(p),
            membership: MembershipLog::new(),
            elastic: false,
            autoscale: None,
            stream: None,
            drop_migrants: false,
            pool: cfg_threads.map(|t| Arc::new(rayon::ThreadPool::new(t))),
        }
    }

    /// Re-distribute `all` particles over `p` ranks while *preserving* the
    /// simulation clock — the elastic-resume constructor: a checkpoint
    /// written at one world size continues at another without resetting
    /// `time`/`steps` to zero (contrast with
    /// [`restore_cluster`](crate::checkpoint::restore_cluster)).
    pub(crate) fn from_redistributed(
        all: Particles,
        p: usize,
        cfg: ClusterConfig,
        time: f64,
        steps: u64,
    ) -> Self {
        let mut c = Self::new(all, p, cfg);
        c.time = time;
        c.steps = steps;
        c
    }

    /// Per-rank load weights (exact-resume checkpoint state).
    pub(crate) fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rank `rank`'s accelerations (aligned with [`Cluster::rank_particles`]).
    pub(crate) fn rank_acc(&self, rank: usize) -> &[Vec3] {
        &self.acc[rank]
    }

    /// Rank `rank`'s potentials (aligned with [`Cluster::rank_particles`]).
    pub(crate) fn rank_pot(&self, rank: usize) -> &[f64] {
        &self.pot[rank]
    }

    /// Rank count.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Total particles across ranks.
    pub fn total_particles(&self) -> usize {
        self.ranks.iter().map(Particles::len).sum()
    }

    /// Current domains.
    pub fn domains(&self) -> &[KeyRange] {
        &self.domains
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.steps
    }

    /// Gravity epochs executed so far (≥ `step_count() + 1`; recovery
    /// rollbacks consume extra epochs).
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Full audit log of injected faults and recovery actions since
    /// construction.
    pub fn fault_log(&self) -> FaultLog {
        self.fault_log.snapshot()
    }

    /// The current membership view (the rank assignment).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Audit log of every view change the cluster went through.
    pub fn membership_log(&self) -> &MembershipLog {
        &self.membership
    }

    /// Make crash recovery *elastic*: a dead rank is agreed out of the
    /// view by the survivors (gossip over the fabric) and the last
    /// checkpoint is re-decomposed among the smaller world, instead of
    /// resurrecting the rank at a fixed world size.
    pub fn enable_elastic_recovery(&mut self) {
        self.elastic = true;
    }

    /// Enable health-driven autoscaling. Requires long-run monitoring
    /// ([`Cluster::enable_longrun`]) — the policy consumes the alerts its
    /// rules fire. Each step may then admit or retire ranks per the policy.
    pub fn enable_autoscale(&mut self, cfg: crate::autoscale::AutoscaleConfig) {
        self.autoscale = Some(crate::autoscale::AutoscalePolicy::new(cfg));
    }

    /// The autoscaling policy, if enabled (decision audit log).
    pub fn autoscale(&self) -> Option<&crate::autoscale::AutoscalePolicy> {
        self.autoscale.as_ref()
    }

    /// Sabotage hook for the CI membership gate's self-test: when set,
    /// every view-change migration silently discards its outbound migrants
    /// (they are drained from the sender but never shipped), so the gate's
    /// particle-conservation check must fail. Never set in real runs.
    pub fn set_drop_migrants(&mut self, yes: bool) {
        self.drop_migrants = yes;
    }

    /// The unified observability trace: spans for every Table II phase of
    /// every completed gravity epoch (keyed rank × epoch × phase), the LET
    /// communication and recovery windows on the COMM lanes, and fault
    /// instants. Failed epochs (rolled back by crash recovery) are not
    /// recorded — a trace describes completed work only.
    pub fn trace(&self) -> &TraceStore {
        &self.trace
    }

    /// The unified metrics registry: walk-interaction and link-byte
    /// counters accumulated over the run, per-kind latency histograms, and
    /// the most recent epoch's per-phase gauges.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Rebuild the most recent epoch's [`StepBreakdown`] purely from the
    /// metrics registry (the reduction view over the per-step gauge
    /// family). Matches the value returned by [`Cluster::step`] exactly:
    /// instrumentation changes observation, not physics or timing.
    pub fn breakdown_from_metrics(&self) -> StepBreakdown {
        let pt = PhaseTimes::from_pairs(crate::breakdown::PHASES.iter().map(|&ph| {
            let v = self
                .registry
                .gauge("bonsai_step_phase_seconds", &[("phase", ph)])
                .unwrap_or(0.0);
            (ph, v)
        }));
        let g = |name| self.registry.gauge(name, &[]).unwrap_or(0.0);
        StepBreakdown::from_phase_times(
            g("bonsai_step_gpus") as u32,
            g("bonsai_step_particles_per_gpu") as u64,
            g("bonsai_step_pp_per_particle"),
            g("bonsai_step_pc_per_particle"),
            &pt,
        )
    }

    /// Enable long-run monitoring: per-metric time series, health rules
    /// and the flight recorder, evaluated inside every subsequent
    /// [`Cluster::step`]. The current energy report becomes the drift
    /// baseline. Re-enabling replaces the previous monitor.
    pub fn enable_longrun(&mut self, cfg: crate::longrun::LongRunConfig) {
        let baseline = self.energy_report();
        self.longrun = Some(crate::longrun::LongRunMonitor::new(cfg, baseline));
    }

    /// The long-run monitor, if enabled.
    pub fn longrun(&self) -> Option<&crate::longrun::LongRunMonitor> {
        self.longrun.as_ref()
    }

    /// Detach and return the long-run monitor (export at end of run).
    pub fn take_longrun(&mut self) -> Option<crate::longrun::LongRunMonitor> {
        self.longrun.take()
    }

    /// Enable in-run telemetry streaming: each subsequent
    /// [`Cluster::step`] publishes versioned frames (step header, phase
    /// sample, gauges, flow digest, alerts, view changes) to the
    /// configured subscribers and meters the observability overhead
    /// against the 3% budget. Re-enabling replaces the previous tap.
    pub fn enable_streaming(&mut self, cfg: crate::stream::StreamConfig) {
        self.stream = Some(crate::stream::StreamTap::new(cfg));
    }

    /// The streaming tap, if enabled (bus accounting, overhead meter).
    pub fn stream(&self) -> Option<&crate::stream::StreamTap> {
        self.stream.as_ref()
    }

    /// Mutable tap access — subscribers poll their rings through this.
    pub fn stream_mut(&mut self) -> Option<&mut crate::stream::StreamTap> {
        self.stream.as_mut()
    }

    /// Detach and return the streaming tap (export at end of run).
    pub fn take_stream(&mut self) -> Option<crate::stream::StreamTap> {
        self.stream.take()
    }

    /// Mutable registry access for the long-run monitor's derived gauges.
    pub(crate) fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Mutable trace access for alert instants and window pruning.
    pub(crate) fn trace_mut(&mut self) -> &mut TraceStore {
        &mut self.trace
    }

    /// The observability surface of a completed view change: an instant on
    /// the coordinator's CPU lane (so membership epochs are visible next to
    /// the phase spans in Perfetto), plus the membership/migration counters
    /// the Prometheus exporter snapshots — epoch gauge, world-size gauge,
    /// and monotonic view-change / migrated-particle / migrated-byte
    /// totals.
    fn record_membership_change(&mut self, change: &ViewChange) {
        let kind = if change.to_world >= change.from_world {
            "grow"
        } else {
            "shrink"
        };
        let at = self.trace.makespan();
        let inst = self.trace.instant(
            0,
            change.epoch,
            Lane::Cpu,
            format!("membership:view-change:{kind}"),
            at,
        );
        inst.args.push(("from_world", ArgValue::U64(change.from_world as u64)));
        inst.args.push(("to_world", ArgValue::U64(change.to_world as u64)));
        inst.args.push(("to_view", ArgValue::U64(change.to_view)));
        inst.args.push((
            "migrated_particles",
            ArgValue::U64(change.migrated_particles as u64),
        ));
        inst.args
            .push(("migrated_bytes", ArgValue::U64(change.migrated_bytes as u64)));
        self.registry
            .gauge_set("bonsai_membership_epoch", &[], change.to_view as f64);
        self.registry
            .gauge_set("bonsai_membership_world", &[], change.to_world as f64);
        self.registry
            .counter_add("bonsai_membership_view_changes_total", &[], 1);
        self.registry.counter_add(
            "bonsai_membership_migrated_particles_total",
            &[],
            change.migrated_particles as u64,
        );
        self.registry.counter_add(
            "bonsai_membership_migrated_bytes_total",
            &[],
            change.migrated_bytes as u64,
        );
        // View changes are must-deliver telemetry: every subscriber sees
        // them even when it is dropping samples under backpressure.
        if let Some(mut tap) = self.stream.take() {
            tap.publish_view_change(self, change);
            self.stream = Some(tap);
        }
    }

    /// An autoscale decision's observability surface: an instant marking
    /// the policy's order (distinct from the view change that executes it)
    /// and a per-direction decision counter.
    fn record_autoscale_decision(&mut self, direction: &'static str, k: usize) {
        let at = self.trace.makespan();
        let inst = self.trace.instant(
            0,
            self.epoch,
            Lane::Cpu,
            format!("autoscale:{direction}"),
            at,
        );
        inst.args.push(("ranks", ArgValue::U64(k as u64)));
        self.registry.counter_add(
            "bonsai_autoscale_decisions_total",
            &[("decision", direction)],
            1,
        );
    }

    /// Borrow one rank's particle shard (checkpointing, inspection).
    pub fn rank_particles(&self, rank: usize) -> &Particles {
        &self.ranks[rank]
    }

    /// Gather all particles (analysis only; order unspecified).
    pub fn gather(&self) -> Particles {
        let mut all = Particles::with_capacity(self.total_particles());
        for r in &self.ranks {
            all.extend_from(r);
        }
        all
    }

    /// Distributed energy/momentum diagnostics from the stored tree
    /// potentials (no extra force evaluation) — the on-the-fly conservation
    /// monitor of a production run.
    pub fn energy_report(&self) -> bonsai_analysis::EnergyReport {
        let mut kinetic = bonsai_util::KahanSum::new();
        let mut potential = bonsai_util::KahanSum::new();
        let mut momentum = Vec3::zero();
        let mut l_z = bonsai_util::KahanSum::new();
        for (rank, pot) in self.ranks.iter().zip(&self.pot) {
            for i in 0..rank.len() {
                let m = rank.mass[i];
                kinetic.add(0.5 * m * rank.vel[i].norm2());
                potential.add(0.5 * m * pot[i]);
                momentum += rank.vel[i] * m;
                l_z.add(m * rank.pos[i].cross(rank.vel[i]).z);
            }
        }
        bonsai_analysis::EnergyReport {
            kinetic: kinetic.value(),
            potential: potential.value(),
            l_z: l_z.value(),
            momentum: momentum.norm(),
        }
    }

    /// Accelerations of every particle keyed by id (analysis/validation).
    pub fn accelerations_by_id(&self) -> std::collections::HashMap<u64, Vec3> {
        let mut map = std::collections::HashMap::with_capacity(self.total_particles());
        for (r, p) in self.ranks.iter().enumerate() {
            for i in 0..p.len() {
                map.insert(p.id[i], self.acc[r][i]);
            }
        }
        map
    }

    /// One full kick–drift–(rebuild + force)–kick step. Returns the
    /// Table II style breakdown with simulated times for the configured
    /// machine.
    ///
    /// If a rank crashes mid-step the cluster rolls back to its last
    /// checkpoint and the whole step is re-executed from the restored
    /// state, so a returned breakdown always describes a completed step.
    pub fn step(&mut self) -> StepBreakdown {
        self.on_pool(Self::step_inner)
    }

    /// Run `f` with the cluster's dedicated pool installed as the current
    /// thread pool (no-op indirection when `cfg.threads` is unset).
    fn on_pool<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        match self.pool.clone() {
            Some(pool) => pool.install(|| f(self)),
            None => f(self),
        }
    }

    fn step_inner(&mut self) -> StepBreakdown {
        let half = 0.5 * self.cfg.dt;
        let dt = self.cfg.dt;
        loop {
            for (rank, acc) in self.ranks.iter_mut().zip(&self.acc) {
                for i in 0..rank.len() {
                    rank.vel[i] += acc[i] * half;
                    let v = rank.vel[i];
                    rank.pos[i] += v * dt;
                }
            }
            let (breakdown, restored) = self.compute_forces_with_recovery();
            if restored {
                // The rollback landed us on a step boundary with fresh
                // forces; redo the kick–drift from there.
                continue;
            }
            for (rank, acc) in self.ranks.iter_mut().zip(&self.acc) {
                for i in 0..rank.len() {
                    rank.vel[i] += acc[i] * half;
                }
            }
            self.time += dt;
            self.steps += 1;
            if let Some(rec) = &self.recovery {
                if rec.every > 0 && self.steps % rec.every == 0 {
                    self.write_recovery_checkpoint();
                }
            }
            // Longitudinal bookkeeping (take/put-back so the monitor can
            // borrow the cluster freely), then the scaling policy: health
            // alerts opening this step may grow the world, sustained idle
            // may shrink it.
            let mut fired: Vec<bonsai_obs::health::AlertEvent> = Vec::new();
            if let Some(mut lr) = self.longrun.take() {
                fired = lr.observe(self, &breakdown);
                self.longrun = Some(lr);
                if let Some(mut policy) = self.autoscale.take() {
                    let mean = self.total_particles() as f64 / self.rank_count() as f64;
                    match policy.decide(self.steps, self.rank_count(), mean, &fired) {
                        crate::autoscale::ScaleDecision::Grow(k) => {
                            self.record_autoscale_decision("grow", k);
                            self.admit_ranks(k)
                        }
                        crate::autoscale::ScaleDecision::Shrink(k) => {
                            self.record_autoscale_decision("shrink", k);
                            self.retire_ranks(k)
                        }
                        crate::autoscale::ScaleDecision::Hold => {}
                    }
                    self.autoscale = Some(policy);
                }
            }
            // The streaming tap runs last (same take/put-back pattern) so
            // its frames describe the step's final state, including any
            // autoscale-driven view change published above.
            if let Some(mut tap) = self.stream.take() {
                tap.observe(self, &breakdown, &fired);
                self.stream = Some(tap);
            }
            return breakdown;
        }
    }

    fn write_recovery_checkpoint(&self) {
        if let Some(rec) = &self.recovery {
            checkpoint::write_checkpoint(self, &rec.dir).expect("checkpoint write failed");
        }
    }

    /// Run gravity epochs until one completes, rolling back to the last
    /// checkpoint when a rank dies. Returns the successful breakdown and
    /// whether any rollback happened (the caller must then redo its step).
    fn compute_forces_with_recovery(&mut self) -> (StepBreakdown, bool) {
        let mut restored = false;
        loop {
            // Elastic recovery changes the world size, so the rank count is
            // re-read on every attempt.
            let p = self.ranks.len();
            self.epoch += 1;
            // Frames held back by Delay/Stall surface now, carrying their
            // old epoch — receive-side validation discards them as stale.
            for ep in &mut self.endpoints {
                ep.flush_delayed();
            }
            if p > 1 {
                // Every rank the plan schedules to die this epoch dies —
                // simultaneous crashes are one detection pass, not a chain
                // of separate recoveries.
                for r in self.plan.crashed_ranks(self.epoch) {
                    if r >= p || self.dead[r] {
                        continue;
                    }
                    // Hard crash: the rank's in-memory state is gone and it
                    // sends nothing from here on.
                    self.fault_log.record_fault(FaultEvent {
                        epoch: self.epoch,
                        from: r,
                        to: r,
                        kind: MsgKind::Control,
                        fault: FaultKind::Crash,
                        attempt: 0,
                    });
                    self.dead[r] = true;
                    self.ranks[r] = Particles::new();
                    self.acc[r].clear();
                    self.pot[r].clear();
                }
            }
            match self.try_gravity_phase() {
                Ok(breakdown) => return (breakdown, restored),
                Err(dead) => {
                    self.restore_from_checkpoint(dead);
                    restored = true;
                }
            }
        }
    }

    /// Declare `dead` dead and roll the whole cluster back to the last
    /// checkpoint (the paper-scale recovery path: restart from the most
    /// recent snapshot, §VI-C). The epoch keeps advancing.
    ///
    /// With [`Cluster::enable_elastic_recovery`] the dead node is instead
    /// agreed *out of the view* by the survivors, and the checkpoint is
    /// re-decomposed over the shrunken world — the run continues with one
    /// rank fewer rather than pretending the node came back.
    fn restore_from_checkpoint(&mut self, dead: usize) {
        // The aborted epoch's unresolved flows die with the crash: they are
        // closed here so the flow-conservation invariant (every sealed flow
        // is delivered, recovered by fallback, or dead) survives rollback.
        self.flows.close_epoch_dead(self.epoch);
        self.fault_log.record_recovery(RecoveryEvent {
            epoch: self.epoch,
            rank: dead,
            peer: None,
            kind: None,
            action: RecoveryAction::DeclareDead,
            detail: format!("rank {dead} missed every retry window"),
        });
        self.dead[dead] = true;
        let rec = self.recovery.clone().unwrap_or_else(|| {
            panic!(
                "rank {dead} declared dead at epoch {} but no recovery checkpoint is \
                 configured; construct with Cluster::with_faults(.., Some(RecoveryConfig)) \
                 to survive crashes",
                self.epoch
            )
        });
        let ck = checkpoint::read_checkpoint_full(&rec.dir)
            .expect("checkpoint unreadable during crash recovery");
        if self.elastic && self.dead.iter().any(|&d| !d) && self.dead.len() > 1 {
            self.restore_elastic(&ck, dead);
            return;
        }
        let p = self.dead.len();
        let (ranks, domains) = seed_decomposition(&ck.particles, p, &self.cfg);
        self.ranks = ranks;
        self.domains = domains;
        self.acc = vec![Vec::new(); p];
        self.pot = vec![Vec::new(); p];
        self.weights = vec![1.0; p];
        self.time = ck.time;
        self.steps = ck.steps;
        self.dead = vec![false; p];
        self.fault_log.record_recovery(RecoveryEvent {
            epoch: self.epoch,
            rank: dead,
            peer: None,
            kind: None,
            action: RecoveryAction::RestoreCheckpoint,
            detail: format!("rolled back to step {} (t = {})", ck.steps, ck.time),
        });
    }

    /// Elastic crash recovery: the survivors gossip the death(s) to
    /// agreement, the dead node(s) leave the view, and the checkpoint is
    /// re-decomposed over the smaller world with the simulation clock
    /// rolled back to the snapshot. A rank that goes silent *during* the
    /// death gossip is added to the casualty list and the round restarts.
    fn restore_elastic(&mut self, ck: &checkpoint::Checkpoint, first_dead: usize) {
        let conv = loop {
            self.epoch += 1;
            for ep in &mut self.endpoints {
                ep.flush_delayed();
            }
            let p = self.ranks.len();
            let deaths: Vec<MembershipEvent> = (0..p)
                .filter(|&r| self.dead[r])
                .map(|r| MembershipEvent::Death(self.view.members[r]))
                .collect();
            let sponsor = (0..p)
                .find(|&r| !self.dead[r])
                .expect("no live rank left to recover the cluster");
            let mut events_at = vec![Vec::new(); p];
            events_at[sponsor] = deaths;
            let live: Vec<bool> = self.dead.iter().map(|&d| !d).collect();
            match membership::converge(
                &mut self.endpoints,
                &self.fault_log,
                &live,
                self.epoch,
                &self.view,
                &events_at,
                MAX_RETRIES_HARD,
            ) {
                Ok(c) => break c,
                Err(also) => {
                    self.flows.close_epoch_dead(self.epoch);
                    self.fault_log.record_recovery(RecoveryEvent {
                        epoch: self.epoch,
                        rank: also,
                        peer: None,
                        kind: Some(MsgKind::View),
                        action: RecoveryAction::DeclareDead,
                        detail: "silent during death gossip".to_string(),
                    });
                    self.dead[also] = true;
                }
            }
        };
        let old_view = std::mem::replace(&mut self.view, conv.view.clone());
        let new_p = conv.view.world();
        self.rebuild_fabric(new_p);
        let (ranks, domains) = seed_decomposition(&ck.particles, new_p, &self.cfg);
        self.ranks = ranks;
        self.domains = domains;
        self.acc = vec![Vec::new(); new_p];
        self.pot = vec![Vec::new(); new_p];
        self.weights = vec![1.0; new_p];
        self.time = ck.time;
        self.steps = ck.steps;
        self.dead = vec![false; new_p];
        self.fault_log.record_recovery(RecoveryEvent {
            epoch: self.epoch,
            rank: first_dead,
            peer: None,
            kind: None,
            action: RecoveryAction::RestoreCheckpoint,
            detail: format!(
                "rolled back to step {} (t = {}) over {} survivors",
                ck.steps, ck.time, new_p
            ),
        });
        self.fault_log.record_recovery(RecoveryEvent {
            epoch: self.epoch,
            rank: first_dead,
            peer: None,
            kind: Some(MsgKind::View),
            action: RecoveryAction::ViewChange,
            detail: format!(
                "view {} -> {} ({} -> {} ranks)",
                old_view.number,
                conv.view.number,
                old_view.world(),
                new_p
            ),
        });
        let change = ViewChange {
            epoch: self.epoch,
            from_view: old_view.number,
            to_view: conv.view.number,
            from_world: old_view.world(),
            to_world: new_p,
            events: conv.events,
            rounds: conv.rounds,
            migrated_particles: 0,
            migrated_bytes: 0,
        };
        self.record_membership_change(&change);
        self.membership.push(change);
    }

    /// Replace the fabric with a fresh one spanning `p` ranks (fault plan
    /// and log carry over; fault decisions are pure functions of the
    /// monotone epoch, so determinism survives the rebuild).
    fn rebuild_fabric(&mut self, p: usize) {
        self.endpoints = Fabric::new(p)
            .into_iter()
            .map(|ep| {
                FaultyEndpoint::new(ep, self.plan.clone(), self.fault_log.clone(), self.flows.clone())
            })
            .collect();
    }

    /// Grow the cluster online: admit `k` fresh ranks. Every member
    /// sponsors the same deterministic node ids for the joiners
    /// ([`View::next_node_id`]), the join is gossiped to agreement over
    /// the fabric, the key space is re-split for the new world, and each
    /// joiner receives its domain from the old owners — then forces are
    /// re-evaluated on the new decomposition (positions are untouched, so
    /// the physics is unchanged up to MAC-level summation order).
    pub fn admit_ranks(&mut self, k: usize) {
        assert!(k > 0, "admit at least one rank");
        let next = self.view.next_node_id();
        let events: Vec<MembershipEvent> = (0..k as u64)
            .map(|i| MembershipEvent::Join(next + i))
            .collect();
        self.change_view(events);
    }

    /// Shrink the cluster online: gracefully retire the `k` newest
    /// (highest node id) members. The leave is gossiped to agreement, the
    /// departing ranks ship their entire populations to the survivors'
    /// re-split domains, and the world compacts to the remaining members.
    pub fn retire_ranks(&mut self, k: usize) {
        assert!(k > 0, "retire at least one rank");
        assert!(
            k < self.view.world(),
            "cannot retire every rank ({k} of {})",
            self.view.world()
        );
        let events: Vec<MembershipEvent> = self
            .view
            .members
            .iter()
            .rev()
            .take(k)
            .map(|&n| MembershipEvent::Leave(n))
            .collect();
        self.change_view(events);
    }

    /// Agree `events` through membership gossip and apply the resulting
    /// view change. A rank that dies before or during the gossip is
    /// recovered first (checkpoint rollback, elastic or fixed) and the
    /// change retried against the recovered cluster.
    fn change_view(&mut self, events: Vec<MembershipEvent>) {
        loop {
            self.epoch += 1;
            for ep in &mut self.endpoints {
                ep.flush_delayed();
            }
            let p = self.ranks.len();
            // Crashes the plan schedules for this epoch fire during the
            // gossip round, exactly as they would during a physics phase.
            if p > 1 {
                for r in self.plan.crashed_ranks(self.epoch) {
                    if r >= p || self.dead[r] {
                        continue;
                    }
                    self.fault_log.record_fault(FaultEvent {
                        epoch: self.epoch,
                        from: r,
                        to: r,
                        kind: MsgKind::View,
                        fault: FaultKind::Crash,
                        attempt: 0,
                    });
                    self.dead[r] = true;
                    self.ranks[r] = Particles::new();
                    self.acc[r].clear();
                    self.pot[r].clear();
                }
            }
            if let Some(first) = (0..p).find(|&r| self.dead[r]) {
                // A member is down: its particles are gone, so recover
                // before changing the view — the change must not launder a
                // particle loss.
                self.restore_from_checkpoint(first);
                continue;
            }
            // Events the (possibly recovered) current view makes moot are
            // dropped; an all-moot change is a no-op.
            let evs: Vec<MembershipEvent> = events
                .iter()
                .copied()
                .filter(|e| match e {
                    MembershipEvent::Join(n) => !self.view.contains(*n),
                    MembershipEvent::Leave(n) | MembershipEvent::Death(n) => {
                        self.view.contains(*n)
                    }
                })
                .collect();
            if evs.is_empty() {
                return;
            }
            let mut events_at = vec![Vec::new(); p];
            events_at[0] = evs;
            let live = vec![true; p];
            match membership::converge(
                &mut self.endpoints,
                &self.fault_log,
                &live,
                self.epoch,
                &self.view,
                &events_at,
                MAX_RETRIES_HARD,
            ) {
                Ok(conv) => {
                    self.apply_view_change(conv);
                    return;
                }
                Err(silent) => {
                    // Gossip silence is a missed heartbeat: recover, retry.
                    self.restore_from_checkpoint(silent);
                }
            }
        }
    }

    /// Apply an agreed view change: re-split the key space for the new
    /// world ([`bonsai_domain::replan`]), migrate particles between the
    /// old and new rank sets over the fabric, compact or extend per-rank
    /// state, and re-evaluate forces on the new decomposition.
    fn apply_view_change(&mut self, conv: membership::Convergence) {
        let new_view = conv.view.clone();
        let old_view = self.view.clone();
        let (old_p, new_p) = (old_view.world(), new_view.world());
        debug_assert_eq!(old_p, self.ranks.len());
        let has_joiners = new_view.members.iter().any(|n| !old_view.contains(*n));
        let has_leavers = old_view.members.iter().any(|n| !new_view.contains(*n));
        assert!(
            !(has_joiners && has_leavers),
            "mixed join+leave view changes must be applied as separate changes"
        );
        let new_rank: Vec<Option<usize>> = old_view
            .members
            .iter()
            .map(|&n| new_view.rank_of(n))
            .collect();

        // Re-split the key space from the global (key, flop-weight)
        // multiset — the same balance objective as the steady-state
        // decomposition, evaluated driver-side like the sample sort.
        let mut bounds = Aabb::empty();
        for shard in &self.ranks {
            if !shard.is_empty() {
                bounds.merge(&shard.bounds());
            }
        }
        let keymap = KeyMap::new(&bounds, self.cfg.tree.curve);
        let keys: Vec<Vec<u64>> = self.ranks.iter().map(|r| keymap.keys_of(&r.pos)).collect();
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(self.total_particles());
        for (r, ks) in keys.iter().enumerate() {
            let w = self.weights[r].max(1e-30);
            for &k in ks {
                pairs.push((k, w));
            }
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let new_domains = bonsai_domain::replan(&pairs, new_p, self.cfg.cap);
        let migration = Migration::plan(&keys, &new_domains, &new_rank);
        let migrated_particles = migration.migrant_count();
        let migrated_bytes = migration.wire_bytes();

        // Drain every old rank's emigrants into per-new-rank buckets. The
        // sabotage hook discards them here — drained but never shipped —
        // which retransmission cannot heal: exactly the loss the CI
        // conservation gate must catch.
        let mut buckets: Vec<Vec<Particles>> = Vec::with_capacity(old_p);
        for r in 0..old_p {
            let mut b = migration.apply(r, &mut self.ranks[r]);
            if self.drop_migrants {
                for pk in &mut b {
                    *pk = Particles::new();
                }
            }
            buckets.push(b);
        }
        let empty = particles_to_bytes(&Particles::new());
        let mut retx = 0usize;

        if new_p >= old_p {
            // Growth: joiners only exist on the new fabric, and old ranks
            // keep their indices (fresh ids sort last), so the migration
            // runs on the rebuilt world. Every pair exchanges a (possibly
            // empty) payload so receivers know exactly what to expect.
            debug_assert!(new_rank.iter().enumerate().all(|(r, &s)| s == Some(r)));
            self.rebuild_fabric(new_p);
            self.ranks.resize_with(new_p, Particles::new);
            self.acc = vec![Vec::new(); new_p];
            self.pot = vec![Vec::new(); new_p];
            let mut w = vec![1.0; new_p];
            w[..old_p].copy_from_slice(&self.weights);
            self.weights = w;
            self.dead = vec![false; new_p];
            self.view = new_view.clone();
            self.domains = new_domains;
            let mut payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; new_p]; new_p];
            for (from, row) in payloads.iter_mut().enumerate() {
                for (to, slot) in row.iter_mut().enumerate() {
                    if to == from {
                        continue;
                    }
                    *slot = Some(if from < old_p && !buckets[from][to].is_empty() {
                        particles_to_bytes(&buckets[from][to])
                    } else {
                        empty.clone()
                    });
                }
            }
            let expected = all_pairs_expected(new_p);
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Particles,
                self.epoch,
                &payloads,
                &expected,
                MAX_RETRIES_HARD,
                &mut retx,
                |_, _, b| particles_from_bytes(b),
            );
            if let Some(&(_, from)) = missing.first() {
                self.restore_from_checkpoint(from);
                return;
            }
            for (to, row) in got.into_iter().enumerate() {
                for pk in row.into_iter().flatten() {
                    if !pk.is_empty() {
                        self.ranks[to].extend_from(&pk);
                    }
                }
            }
        } else {
            // Shrink: departing ranks only exist on the old fabric, so the
            // migration runs there; the world compacts afterwards.
            let mut payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; old_p]; old_p];
            for (from, row) in payloads.iter_mut().enumerate() {
                for (to, slot) in row.iter_mut().enumerate() {
                    if to == from {
                        continue;
                    }
                    let bucket = new_view
                        .rank_of(old_view.members[to])
                        .map(|d| &buckets[from][d])
                        .filter(|b| !b.is_empty());
                    *slot = Some(match bucket {
                        Some(b) => particles_to_bytes(b),
                        None => empty.clone(),
                    });
                }
            }
            let expected = all_pairs_expected(old_p);
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Particles,
                self.epoch,
                &payloads,
                &expected,
                MAX_RETRIES_HARD,
                &mut retx,
                |_, _, b| particles_from_bytes(b),
            );
            if let Some(&(_, from)) = missing.first() {
                self.restore_from_checkpoint(from);
                return;
            }
            for (to, row) in got.into_iter().enumerate() {
                for pk in row.into_iter().flatten() {
                    if !pk.is_empty() {
                        self.ranks[to].extend_from(&pk);
                    }
                }
            }
            // Compact state to the surviving members, in new-view order.
            let survivors: Vec<usize> = new_view
                .members
                .iter()
                .map(|&n| old_view.rank_of(n).expect("survivor was a member"))
                .collect();
            self.ranks = survivors
                .iter()
                .map(|&o| std::mem::replace(&mut self.ranks[o], Particles::new()))
                .collect();
            self.weights = survivors.iter().map(|&o| self.weights[o]).collect();
            self.acc = vec![Vec::new(); new_p];
            self.pot = vec![Vec::new(); new_p];
            self.dead = vec![false; new_p];
            self.rebuild_fabric(new_p);
            self.view = new_view.clone();
            self.domains = new_domains;
        }

        self.fault_log.record_recovery(RecoveryEvent {
            epoch: self.epoch,
            rank: 0,
            peer: None,
            kind: Some(MsgKind::View),
            action: RecoveryAction::ViewChange,
            detail: format!(
                "view {} -> {} ({} -> {} ranks, {} migrants)",
                old_view.number,
                new_view.number,
                old_p,
                new_p,
                migrated_particles
            ),
        });
        let change = ViewChange {
            epoch: self.epoch,
            from_view: old_view.number,
            to_view: new_view.number,
            from_world: old_p,
            to_world: new_p,
            events: conv.events,
            rounds: conv.rounds,
            migrated_particles,
            migrated_bytes,
        };
        self.record_membership_change(&change);
        self.membership.push(change);
        // Fresh forces on the new decomposition; positions are unchanged,
        // so this is an observation change, not a physics change. Also
        // checkpoints the post-change state so a later crash does not roll
        // back across the membership boundary.
        self.compute_forces_with_recovery();
        self.write_recovery_checkpoint();
    }

    /// The distributed force computation: heartbeat + bounds, domain
    /// update, particle exchange, tree builds, boundary allgather,
    /// sufficiency checks, LET exchange, walks — with every inter-rank
    /// payload crossing the (possibly faulty) fabric in validated
    /// envelopes. Populates `self.acc` and returns the breakdown, or
    /// `Err(rank)` when a rank stayed silent through every retry and must
    /// be treated as crashed.
    fn try_gravity_phase(&mut self) -> Result<StepBreakdown, usize> {
        let p = self.ranks.len();
        let cfg = self.cfg.clone();
        let epoch = self.epoch;
        let mut meas = StepMeasurements {
            boundary_bytes: vec![0; p],
            let_bytes_sent: vec![0; p],
            let_neighbors: vec![0; p],
            exchange_bytes: vec![0; p],
            counts_local: vec![InteractionCounts::zero(); p],
            counts_lets: vec![InteractionCounts::zero(); p],
            sampled_keys: vec![0; p],
            ..StepMeasurements::default()
        };

        // --- 1. Heartbeat + global bounding box (an allreduce). ------------
        // Every alive rank broadcasts its local bounds as a Control frame;
        // this doubles as the liveness probe: a rank missing from every
        // retry round is reported dead.
        let mut bounds = Aabb::empty();
        if p > 1 {
            let mut payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; p]; p];
            for r in 0..p {
                if self.dead[r] {
                    continue;
                }
                let local = if self.ranks[r].is_empty() {
                    Aabb::empty()
                } else {
                    self.ranks[r].bounds()
                };
                let enc = Bytes::from(aabb_to_bytes(&local));
                for to in 0..p {
                    if to != r {
                        payloads[r][to] = Some(enc.clone());
                    }
                }
            }
            let expected = all_pairs_expected(p);
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Control,
                epoch,
                &payloads,
                &expected,
                MAX_RETRIES_HARD,
                &mut meas.retransmit_bytes,
                |_, _, b| aabb_from_bytes(b),
            );
            if let Some(&(_, from)) = missing.first() {
                return Err(from);
            }
            // Every rank derives the same global box; use rank 0's view.
            if !self.ranks[0].is_empty() {
                bounds.merge(&self.ranks[0].bounds());
            }
            for from in 1..p {
                if let Some(b) = &got[0][from] {
                    bounds.merge(b);
                }
            }
        } else if !self.ranks[0].is_empty() {
            bounds.merge(&self.ranks[0].bounds());
        }
        let keymap = KeyMap::new(&bounds, cfg.tree.curve);

        // --- 2. Domain update: two-level sample sort + cap. ----------------
        if p > 1 {
            let per_rank_sorted: Vec<Vec<u64>> = self
                .ranks
                .par_iter()
                .map(|r| {
                    let mut ks = keymap.keys_of(&r.pos);
                    ks.sort_unstable();
                    ks
                })
                .collect();
            // Sampling-rate correction ∝ previous flop weight (§III-B1).
            let w_mean = self.weights.iter().sum::<f64>() / p as f64;
            let weighted: Vec<Vec<u64>> = per_rank_sorted
                .iter()
                .zip(&self.weights)
                .map(|(ks, &w)| {
                    let factor = (w / w_mean.max(1e-30)).clamp(0.25, 4.0);
                    let s = ((cfg.sample_s2 as f64 * factor) as usize).max(4);
                    bonsai_domain::sampling::systematic_sample(ks, s)
                })
                .collect();
            for (r, ks) in weighted.iter().enumerate() {
                meas.sampled_keys[r] = ks.len();
            }
            let (px, py) = factor_ranks(p);
            let (mut domains, _stats) = parallel_cuts(&weighted, px, py, cfg.sample_s1, cfg.sample_s2);
            // Enforce the 30% particle cap against the global key multiset.
            let mut all_keys: Vec<u64> = per_rank_sorted.iter().flatten().copied().collect();
            all_keys.sort_unstable();
            domains = enforce_particle_cap(&domains, &all_keys, cfg.cap);
            self.domains = domains;

            // --- 3. Particle exchange through the fabric. ------------------
            // Every pair exchanges a (possibly empty) migrant payload, so
            // the receive side knows exactly what to expect.
            let mut payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; p]; p];
            for me in 0..p {
                let ks = keymap.keys_of(&self.ranks[me].pos);
                let plan = ExchangePlan::plan(me, &ks, &self.domains);
                meas.exchange_bytes[me] = plan.wire_bytes();
                let shipped = plan.apply(&mut self.ranks[me]);
                for (dest, pk) in shipped.into_iter().enumerate() {
                    if dest != me {
                        payloads[me][dest] = Some(particles_to_bytes(&pk));
                    }
                }
            }
            let expected = all_pairs_expected(p);
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Particles,
                epoch,
                &payloads,
                &expected,
                MAX_RETRIES_HARD,
                &mut meas.retransmit_bytes,
                |_, _, b| particles_from_bytes(b),
            );
            if let Some(&(_, from)) = missing.first() {
                return Err(from);
            }
            for (to, row) in got.into_iter().enumerate() {
                for pk in row.into_iter().flatten() {
                    if !pk.is_empty() {
                        self.ranks[to].extend_from(&pk);
                    }
                }
            }
        }

        // Imbalance after the exchange.
        let mean_n = self.total_particles() as f64 / p as f64;
        let max_n = self.ranks.iter().map(Particles::len).max().unwrap_or(0) as f64;
        meas.imbalance = if mean_n > 0.0 { max_n / mean_n } else { 1.0 };

        // --- 4. Per-rank trees over the shared key map. ---------------------
        let tree_params = cfg.tree;
        let rank_particles: Vec<Particles> = self.ranks.drain(..).collect();
        let trees: Vec<Tree> = rank_particles
            .into_par_iter()
            .map(|pr| Tree::build_with_keymap(pr, keymap.clone(), tree_params))
            .collect();

        // --- 5. Boundary allgather through the fabric. ----------------------
        let boundaries: Vec<LetTree> = trees
            .par_iter()
            .zip(self.domains.par_iter())
            .map(|(t, d)| boundary_tree(t, d))
            .collect();
        for (i, b) in boundaries.iter().enumerate() {
            meas.boundary_bytes[i] = b.wire_size();
        }
        // held[j][i]: rank j's validated wire copy of rank i's boundary.
        let mut held: Vec<Vec<Option<LetTree>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        if p > 1 {
            let mut payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; p]; p];
            for from in 0..p {
                let enc = boundaries[from].to_bytes();
                for to in 0..p {
                    if to != from {
                        payloads[from][to] = Some(enc.clone());
                    }
                }
            }
            let expected = all_pairs_expected(p);
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Boundary,
                epoch,
                &payloads,
                &expected,
                MAX_RETRIES_HARD,
                &mut meas.retransmit_bytes,
                |_, _, b| parse_let_tree(b, "boundary"),
            );
            if let Some(&(_, from)) = missing.first() {
                return Err(from);
            }
            held = got;
        }

        // Each rank's own frontier geometry (walk targets for senders).
        let own_geoms: Vec<Vec<Aabb>> = boundaries.iter().map(LetTree::frontier_boxes).collect();

        // --- 6. Sufficiency checks + dedicated LETs (sender side). ----------
        // Sender i decides from its *received* copy of j's boundary; the
        // receiver re-derives the same decision from its own data, so both
        // sides agree on which LETs are in flight without extra messages.
        let let_builds: Vec<Vec<(usize, LetTree)>> = (0..p)
            .into_par_iter()
            .map(|i| {
                let mut out = Vec::new();
                if boundaries[i].is_empty() {
                    return out;
                }
                for j in 0..p {
                    if j == i {
                        continue;
                    }
                    let geom_j: Vec<Aabb> = held[i][j]
                        .as_ref()
                        .map(LetTree::frontier_boxes)
                        .unwrap_or_default();
                    if geom_j.is_empty() {
                        continue;
                    }
                    if !boundary_sufficient_for(&boundaries[i], &geom_j, cfg.theta) {
                        out.push((j, build_let(&trees[i], &geom_j, cfg.theta)));
                    }
                }
                out
            })
            .collect();
        let mut let_payloads: Vec<Vec<Option<Bytes>>> = vec![vec![None; p]; p];
        for (i, builds) in let_builds.iter().enumerate() {
            for (j, lt) in builds {
                meas.let_bytes_sent[i] += lt.wire_size();
                meas.let_neighbors[i] += 1;
                let_payloads[i][*j] = Some(lt.to_bytes());
            }
        }
        let expected_let: Vec<Vec<usize>> = (0..p)
            .map(|j| {
                (0..p)
                    .filter(|&i| i != j)
                    .filter(|&i| match &held[j][i] {
                        Some(bi) => {
                            !bi.is_empty()
                                && !own_geoms[j].is_empty()
                                && !boundary_sufficient_for(bi, &own_geoms[j], cfg.theta)
                        }
                        None => false,
                    })
                    .collect()
            })
            .collect();
        let mut got_lets: Vec<Vec<Option<LetTree>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        if p > 1 {
            let (got, missing) = exchange_validated(
                &mut self.endpoints,
                &self.fault_log,
                MsgKind::Let,
                epoch,
                &let_payloads,
                &expected_let,
                MAX_RETRIES_LET,
                &mut meas.retransmit_bytes,
                |_, _, b| parse_let_tree(b, "LET"),
            );
            got_lets = got;
            // A LET that never made it is not fatal: the receiver walks the
            // sender's boundary tree it already holds. Coarser MAC
            // acceptance shows up as forced cuts, which the step counts.
            for &(j, i) in &missing {
                // The flow resolves as recovered-by-fallback, not dead: the
                // receiver walks the boundary tree it already holds.
                self.flows.fallback_pending(epoch, i, j, MsgKind::Let);
                self.fault_log.record_recovery(RecoveryEvent {
                    epoch,
                    rank: j,
                    peer: Some(i),
                    kind: Some(MsgKind::Let),
                    action: RecoveryAction::BoundaryFallback,
                    detail: "dedicated LET lost; walking held boundary tree".to_string(),
                });
                meas.degraded_lets += 1;
            }
        }

        // sources[j] = what rank j walks for each remote rank i.
        let sources: Vec<Vec<(usize, RemoteSource)>> = (0..p)
            .map(|j| {
                let mut list = Vec::with_capacity(p.saturating_sub(1));
                for i in 0..p {
                    if i == j {
                        continue;
                    }
                    let Some(bi) = &held[j][i] else { continue };
                    if bi.is_empty() {
                        continue;
                    }
                    match got_lets[j][i].take() {
                        Some(lt) => list.push((i, RemoteSource::Dedicated(lt))),
                        None => list.push((i, RemoteSource::Boundary)),
                    }
                }
                list
            })
            .collect();

        // --- 7. Force walks: local tree + every remote source. -------------
        let params = WalkParams {
            theta: cfg.theta,
            eps: cfg.eps,
            g: cfg.g,
            use_quadrupole: true,
        };
        struct RankForces {
            forces: Forces,
            local: InteractionCounts,
            lets: InteractionCounts,
            forced: u64,
        }
        let results: Vec<RankForces> = (0..p)
            .into_par_iter()
            .map(|j| {
                let tree = &trees[j];
                let (mut forces, st_local) = walk::self_gravity(tree, &params);
                let mut lets = InteractionCounts::zero();
                let mut forced = st_local.forced_cuts;
                for (i, src) in &sources[j] {
                    let view = match src {
                        RemoteSource::Boundary => {
                            held[j][*i].as_ref().expect("held boundary").view()
                        }
                        RemoteSource::Dedicated(lt) => lt.view(),
                    };
                    let (f, st) =
                        walk::walk_tree(&view, &tree.particles.pos, &tree.groups, &params);
                    forces.accumulate(&f);
                    lets += st.counts;
                    forced += st.forced_cuts;
                }
                RankForces {
                    forces,
                    local: st_local.counts,
                    lets,
                    forced,
                }
            })
            .collect();

        // --- 8. Store state back; update weights. ---------------------------
        self.ranks = trees.into_iter().map(|t| t.particles).collect();
        self.acc = results.iter().map(|r| r.forces.acc.clone()).collect();
        self.pot = results.iter().map(|r| r.forces.pot.clone()).collect();
        for (i, r) in results.iter().enumerate() {
            meas.counts_local[i] = r.local;
            meas.counts_lets[i] = r.lets;
            meas.forced_cuts += r.forced;
            let flops = (r.local + r.lets).flops() as f64;
            self.weights[i] = flops / self.ranks[i].len().max(1) as f64;
        }

        meas.faults = self.fault_log.snapshot().for_epoch(epoch);
        let breakdown = self.assemble_breakdown(&meas);
        self.record_observability(&meas, &breakdown);
        self.last_measurements = meas;
        Ok(breakdown)
    }

    /// Record a completed gravity epoch into the unified observability
    /// layer: per-rank spans for every Table II phase on the GPU lane
    /// (including the attributed integration sub-phase), load-balance and
    /// orchestration bookkeeping on the CPU lane, the LET exchange window
    /// and retransmission recovery on the COMM lane, explicit cross-rank
    /// `wait` spans for the barrier at the end of the epoch, fault
    /// instants, walk/link metrics, and the per-step gauge family
    /// [`Cluster::breakdown_from_metrics`] reduces over. The clock base
    /// then advances by the epoch's makespan so consecutive epochs render
    /// side by side in Perfetto.
    fn record_observability(&mut self, meas: &StepMeasurements, breakdown: &StepBreakdown) {
        // Drop the previous epoch's step-scoped gauges first: a label set
        // that existed only last epoch (a phase that didn't run, a derived
        // long-run signal) must not leak into this epoch's sample.
        self.registry.reset_step();
        let p = self.ranks.len();
        let step = self.epoch;
        let base = self.trace_clock;
        let gpu = self.gpu;
        // Host-CPU key-classification rate of the *configured* machine
        // (Titan's slower Opteron stretches this phase, §VI-B).
        let classify_rate = 130.0e6 * self.cfg.machine.cpu_let_rate;
        let orchestration = crate::breakdown::STEP_LAUNCHES * crate::breakdown::LAUNCH_LATENCY;
        let mut local_starts = vec![0.0; p];
        // Each rank's modeled LET-exchange window length; the flow anchors
        // below spread a sender's flows across it.
        let mut comm_durs = vec![0.0; p];
        // Per-rank busy end (all lanes): where each rank hits the epoch's
        // closing barrier and starts waiting for the straggler.
        let mut rank_end = vec![base; p];
        for r in 0..p {
            let n = self.ranks[r].len() as u64;
            let rank = r as u32;
            let mut t = base;
            for (name, dur, rate, cost) in [
                ("sort", gpu.sort_time(n), gpu.sort_rate, SORT_COST),
                ("domain", n as f64 / classify_rate, classify_rate, DOMAIN_COST),
                ("build", gpu.build_time(n), gpu.build_rate, BUILD_COST),
                ("props", gpu.props_time(n), gpu.props_rate, PROPS_COST),
            ] {
                let id = self.trace.span(rank, step, Lane::Gpu, name, t, t + dur);
                gpu.annotate_stream_span(&mut self.trace, id, n, rate, cost);
                t += dur;
            }
            let local_start = t;
            local_starts[r] = local_start;
            for (name, counts) in [("local", meas.counts_local[r]), ("lets", meas.counts_lets[r])]
            {
                let dur = gpu.gravity_time(counts);
                let id = self.trace.span(rank, step, Lane::Gpu, name, t, t + dur);
                gpu.annotate_gravity_span(&mut self.trace, id, counts);
                t += dur;
            }
            // The attributed tail of the former "other" bucket: leapfrog
            // integration on the device, then load-balance bookkeeping and
            // host orchestration on the CPU lane.
            let d_int = n as f64 / crate::breakdown::INTEGRATE_RATE;
            let id = self.trace.span(rank, step, Lane::Gpu, "integrate", t, t + d_int);
            gpu.annotate_stream_span(
                &mut self.trace,
                id,
                n,
                crate::breakdown::INTEGRATE_RATE,
                INTEGRATE_COST,
            );
            t += d_int;
            let d_bal = meas.sampled_keys[r] as f64 / classify_rate;
            let id = self.trace.span(rank, step, Lane::Cpu, "balance", t, t + d_bal);
            self.trace.arg_u64(id, "sampled_keys", meas.sampled_keys[r] as u64);
            t += d_bal;
            let id = self.trace.span(rank, step, Lane::Cpu, "orchestrate", t, t + orchestration);
            self.trace
                .arg_f64(id, "launches", crate::breakdown::STEP_LAUNCHES);
            t += orchestration;
            // COMM lane: the LET exchange runs concurrently with local
            // gravity (the overlap story of §III-B2).
            let nb = meas.let_neighbors[r] as u32;
            let per = if nb > 0 {
                (meas.let_bytes_sent[r] / nb as usize) as u64
            } else {
                0
            };
            let comm_dur = self.net.let_exchange_time(nb, per);
            comm_durs[r] = comm_dur;
            let id = self.trace.span(
                rank,
                step,
                Lane::Comm,
                "let-comm",
                local_start,
                local_start + comm_dur,
            );
            self.trace.arg_u64(id, "bytes", meas.let_bytes_sent[r] as u64);
            self.trace.arg_u64(id, "neighbors", nb as u64);
            rank_end[r] = t.max(local_start + comm_dur);

            record_walk_counts(&mut self.registry, "local", meas.counts_local[r]);
            record_walk_counts(&mut self.registry, "lets", meas.counts_lets[r]);
            for (kind, bytes) in [
                ("boundary", meas.boundary_bytes[r]),
                ("let", meas.let_bytes_sent[r]),
                ("exchange", meas.exchange_bytes[r]),
            ] {
                self.net.observe_link(&mut self.registry, kind, r, bytes as u64);
            }
        }
        // Flow lifecycles of this epoch: anchor every sealed envelope's
        // modeled send/resolve instants inside the step window, emit the
        // Perfetto arrow points (`s` on the sender's COMM lane, `t` per
        // retransmission, `f` at the receiver), and record the flow-level
        // metrics family.
        let ledger = self.flows.snapshot();
        let clock = FlowClock::new(&self.net);
        let mut summaries: Vec<FlowSummary> = Vec::new();
        // Spread each sender's flows across its exchange window (seal order
        // = slot order) so the arrows land where the transfer would be in
        // flight, not stacked at the window's opening instant. Delivery
        // latency is anchor-invariant: send and resolve shift together.
        let mut flow_count = vec![0usize; p];
        for r in ledger.records().iter().filter(|r| r.epoch == step) {
            if r.from < p {
                flow_count[r.from] += 1;
            }
        }
        let mut flow_seq = vec![0usize; p];
        for r in ledger.records().iter().filter(|r| r.epoch == step) {
            let slot = if r.from < p && flow_count[r.from] > 0 {
                let i = flow_seq[r.from];
                flow_seq[r.from] += 1;
                comm_durs[r.from] * i as f64 / flow_count[r.from] as f64
            } else {
                0.0
            };
            // `local_starts` is absolute (accumulated from `base`): the
            // exchange window of each rank opens at its local-gravity start.
            let base_from = local_starts.get(r.from).copied().unwrap_or(base) + slot;
            let base_to = local_starts.get(r.to).copied().unwrap_or(base);
            let send_at = clock.send_at(r, 0, base_from);
            let resolve_at = clock.resolve_at(r, base_from, base_to);
            let name = format!("flow:{:?}", r.kind);
            self.trace
                .flow_point(r.id, r.from as u32, step, Lane::Comm, name.clone(), send_at, FlowPhase::Start);
            for a in 1..r.attempts {
                self.trace.flow_point(
                    r.id,
                    r.from as u32,
                    step,
                    Lane::Comm,
                    name.clone(),
                    clock.send_at(r, a, base_from),
                    FlowPhase::Step,
                );
            }
            if let Some(at) = resolve_at {
                self.trace
                    .flow_point(r.id, r.to as u32, step, Lane::Comm, name, at, FlowPhase::Finish);
            }
            let link = format!("{}->{}", r.from, r.to);
            let outcome = r.outcome.label();
            if r.attempts > 1 {
                self.registry.counter_add(
                    "bonsai_flow_retransmits_total",
                    &[("link", link.as_str())],
                    (r.attempts - 1) as u64,
                );
            }
            if let Some(d) = clock.deliver_at(r, base_from) {
                self.registry
                    .histogram_observe("bonsai_flow_delivery_seconds", &[], d - send_at);
            }
            // Exposed flows: the ones whose cost the overlap window could
            // not hide (a retransmission or a fallback reroute).
            if r.attempts > 1 || outcome == "fallback" {
                self.registry.counter_add(
                    "bonsai_flow_exposed_total",
                    &[("kind", &format!("{:?}", r.kind))],
                    1,
                );
            }
            summaries.push(FlowSummary {
                id: r.id,
                step,
                epoch: r.epoch,
                from: r.from,
                to: r.to,
                kind: format!("{:?}", r.kind),
                bytes: r.bytes,
                attempts: r.attempts,
                faults: r.injected.iter().map(|(_, f)| f.to_string()).collect(),
                outcome: outcome.to_string(),
                send_at,
                resolve_at,
            });
        }

        // The epoch's closing barrier: every rank that finishes before the
        // straggler records an explicit cross-rank wait span, so the
        // critical-path analyzer sees slack instead of blank lanes. The
        // span carries the wait's *cause*, classified from the flows that
        // touched the straggler (fallback > stall > retransmission >
        // late-sender), which is what the critical path harvests into its
        // by-cause breakdown.
        let mut straggler = 0usize;
        for (r, &e) in rank_end.iter().enumerate() {
            if e > rank_end[straggler] {
                straggler = r;
            }
        }
        let cause = waits::classify(
            summaries
                .iter()
                .filter(|f| f.from == straggler || f.to == straggler),
        )
        .name();
        let barrier = rank_end[straggler];
        for (r, &e) in rank_end.iter().enumerate() {
            if barrier - e > 1e-15 {
                let id = self
                    .trace
                    .span(r as u32, step, Lane::Cpu, "wait", e, barrier);
                self.trace.arg_u64(id, "waiting_on", straggler as u64);
                self.trace.arg_str(id, "cause", cause);
            }
        }
        self.last_flows = summaries;
        let mut makespan = barrier - base;
        // Recovery retransmissions happen after the normal windows close;
        // the traffic is aggregate, so the span lands on rank 0's COMM lane.
        if breakdown.recovery > 0.0 {
            let start = base + makespan;
            let id = self.trace.span(
                0,
                step,
                Lane::Comm,
                "recovery",
                start,
                start + breakdown.recovery,
            );
            self.trace
                .arg_u64(id, "retransmit_bytes", meas.retransmit_bytes as u64);
            self.net
                .observe_link(&mut self.registry, "retransmit", 0, meas.retransmit_bytes as u64);
            makespan += breakdown.recovery;
        }
        bonsai_net::obs::record_fault_log(&meas.faults, &ledger, &self.net, &mut self.trace, step, &|rank| {
            local_starts.get(rank).copied().unwrap_or(base)
        });

        for (phase, secs) in breakdown.phase_times().iter() {
            self.registry
                .step_gauge_set("bonsai_step_phase_seconds", &[("phase", phase)], secs);
        }
        self.registry
            .step_gauge_set("bonsai_step_gpus", &[], breakdown.gpus as f64);
        self.registry.step_gauge_set(
            "bonsai_step_particles_per_gpu",
            &[],
            breakdown.particles_per_gpu as f64,
        );
        self.registry
            .step_gauge_set("bonsai_step_pp_per_particle", &[], breakdown.pp_per_particle);
        self.registry
            .step_gauge_set("bonsai_step_pc_per_particle", &[], breakdown.pc_per_particle);
        self.trace_clock = base + makespan;
    }

    /// Charge the measured quantities to the machine models.
    fn assemble_breakdown(&self, meas: &StepMeasurements) -> StepBreakdown {
        let p = self.ranks.len() as u32;
        let n_max = self.ranks.iter().map(Particles::len).max().unwrap_or(0) as u64;
        let n_mean = (self.total_particles() as f64 / p as f64) as u64;

        let sort = self.gpu.sort_time(n_max);
        let tree_construction = self.gpu.build_time(n_max);
        let tree_properties = self.gpu.props_time(n_max);

        // Domain update: CPU key classification + boundary allgather +
        // exchange.
        let classify = n_max as f64 / (130.0e6 * self.cfg.machine.cpu_let_rate);
        let avg_boundary =
            meas.boundary_bytes.iter().sum::<usize>() as u64 / p.max(1) as u64;
        let allgather = self.net.allgatherv_time(p, avg_boundary);
        let max_exchange = meas.exchange_bytes.iter().copied().max().unwrap_or(0) as u64;
        let domain_update = if p <= 1 {
            0.0
        } else {
            classify + allgather + self.net.particle_exchange_time(max_exchange, 6)
        };

        // Gravity (critical path = slowest rank per phase).
        let gravity_local = meas
            .counts_local
            .iter()
            .map(|&c| self.gpu.gravity_time(c))
            .fold(0.0, f64::max);
        let gravity_lets = meas
            .counts_lets
            .iter()
            .map(|&c| self.gpu.gravity_time(c))
            .fold(0.0, f64::max);

        // LET communication (per-rank injection) vs the overlap window.
        let let_comm: f64 = meas
            .let_bytes_sent
            .iter()
            .zip(&meas.let_neighbors)
            .map(|(&b, &nb)| {
                let per = if nb > 0 { (b / nb.max(1)) as u64 } else { 0 };
                self.net.let_exchange_time(nb as u32, per)
            })
            .fold(0.0, f64::max);
        let non_hidden_comm = (let_comm - gravity_local).max(0.0);

        // Recovery traffic: retransmissions are extra injection-bandwidth
        // time that nothing overlaps (they happen after the phase's normal
        // window has closed).
        let recovery = if meas.retransmit_bytes > 0 {
            self.net.let_exchange_time(1, meas.retransmit_bytes as u64)
        } else {
            0.0
        };

        // The former "Unbalance + Other" bucket, attributed to its real
        // sub-phases: leapfrog integration (device, bandwidth-bound),
        // load-balance bookkeeping (host processing of the sampled keys),
        // host orchestration (kernel-launch / driver latency), and the
        // cross-rank straggler gap in total gravity.
        let totals: Vec<f64> = meas
            .counts_local
            .iter()
            .zip(&meas.counts_lets)
            .map(|(&a, &b)| self.gpu.gravity_time(a + b))
            .collect();
        let max_t = totals.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean_t = totals.iter().sum::<f64>() / totals.len() as f64;
        let integration = n_max as f64 / crate::breakdown::INTEGRATE_RATE;
        let load_balance = meas.sampled_keys.iter().copied().max().unwrap_or(0) as f64
            / (130.0e6 * self.cfg.machine.cpu_let_rate);
        let orchestration = crate::breakdown::STEP_LAUNCHES * crate::breakdown::LAUNCH_LATENCY;
        let unbalance = max_t - mean_t;

        let total_counts: InteractionCounts = meas
            .counts_local
            .iter()
            .zip(&meas.counts_lets)
            .map(|(&a, &b)| a + b)
            .sum();
        let n_total = self.total_particles();
        let (pp_pp, pc_pp) = total_counts.per_particle(n_total);

        StepBreakdown {
            gpus: p,
            particles_per_gpu: n_mean,
            sort,
            domain_update,
            tree_construction,
            tree_properties,
            gravity_local,
            gravity_lets,
            non_hidden_comm,
            recovery,
            integration,
            load_balance,
            orchestration,
            unbalance,
            pp_per_particle: pp_pp,
            pc_per_particle: pc_pp,
        }
    }

    /// The flop-balance residual the §III-B1 balancer could attain *right
    /// now*: apply [`bonsai_domain::load::weighted_cuts`] to the global
    /// (key, flop-weight) multiset built from the current particles and the
    /// previous step's per-rank flop weights, and return the max/mean piece
    /// weight of the resulting cuts. The cross-rank analysis layer compares
    /// the *measured* per-rank flop shares against this attainable target —
    /// a measured imbalance far above it means the balancer is lagging the
    /// weight field, not that the field is unbalanceable.
    pub fn rebalance_residual(&self) -> f64 {
        let p = self.ranks.len();
        if p <= 1 {
            return 1.0;
        }
        let mut bounds = Aabb::empty();
        for shard in &self.ranks {
            if !shard.is_empty() {
                bounds.merge(&shard.bounds());
            }
        }
        let keymap = KeyMap::new(&bounds, self.cfg.tree.curve);
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(self.total_particles());
        for (r, shard) in self.ranks.iter().enumerate() {
            let w = self.weights[r];
            for &q in &shard.pos {
                pairs.push((keymap.key_of(q), w));
            }
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let ranges = bonsai_domain::load::weighted_cuts(&pairs, p);
        let shares = bonsai_domain::load::weight_shares(&pairs, &ranges);
        bonsai_domain::load::share_imbalance(&shares)
    }

    /// Flow summaries (modeled times) of the most recent recorded epoch —
    /// the per-step slice the wait-attribution analysis and the flow bench
    /// consume.
    pub fn last_flow_summaries(&self) -> &[FlowSummary] {
        &self.last_flows
    }

    /// Snapshot of the whole run's flow ledger (every envelope sealed on
    /// the fabric since construction).
    pub fn flow_ledger(&self) -> FlowLedger {
        self.flows.snapshot()
    }

    /// Conservation totals over every flow sealed so far: in a completed
    /// run, sealed = delivered + fallback + dead with nothing pending.
    pub fn flow_conservation(&self) -> FlowConservation {
        self.flows.conservation()
    }
}

/// Initial decomposition: even counts along the SFC (also used to
/// re-scatter a checkpoint during crash recovery).
fn seed_decomposition(
    all: &Particles,
    p: usize,
    cfg: &ClusterConfig,
) -> (Vec<Particles>, Vec<KeyRange>) {
    let keymap = KeyMap::new(&all.bounds(), cfg.tree.curve);
    let keys: Vec<u64> = all.pos.iter().map(|&q| keymap.key_of(q)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let cuts: Vec<u64> = (1..p).map(|i| sorted[i * all.len() / p]).collect();
    let domains = bonsai_sfc::range::ranges_from_cuts(&cuts);
    let mut ranks: Vec<Particles> = (0..p).map(|_| Particles::new()).collect();
    for i in 0..all.len() {
        let r = bonsai_sfc::range::find_owner(&domains, keys[i]);
        ranks[r].push(all.pos[i], all.vel[i], all.mass[i], all.id[i]);
    }
    (ranks, domains)
}

/// `expected[to]` = every other rank (the all-pairs exchanges).
fn all_pairs_expected(p: usize) -> Vec<Vec<usize>> {
    (0..p)
        .map(|to| (0..p).filter(|&f| f != to).collect())
        .collect()
}

fn aabb_to_bytes(b: &Aabb) -> Vec<u8> {
    let mut v = Vec::with_capacity(48);
    for f in [b.min.x, b.min.y, b.min.z, b.max.x, b.max.y, b.max.z] {
        v.extend_from_slice(&f.to_le_bytes());
    }
    v
}

fn aabb_from_bytes(d: &[u8]) -> Result<Aabb, String> {
    if d.len() != 48 {
        return Err(format!("bounds payload is {} bytes, expected 48", d.len()));
    }
    let f = |i: usize| f64::from_le_bytes(d[i * 8..i * 8 + 8].try_into().unwrap());
    for k in 0..6 {
        if f(k).is_nan() {
            return Err("bounds contain NaN".to_string());
        }
    }
    Ok(Aabb {
        min: Vec3::new(f(0), f(1), f(2)),
        max: Vec3::new(f(3), f(4), f(5)),
    })
}

fn parse_let_tree(b: &[u8], what: &str) -> Result<LetTree, String> {
    let lt = LetTree::from_bytes(b).ok_or_else(|| format!("{what} wire decode failed"))?;
    lt.check_invariants()
        .map_err(|e| format!("{what} invariants: {e}"))?;
    Ok(lt)
}

/// One all-to-all exchange over the (possibly faulty) fabric with strict
/// receive-side validation and bounded retransmission.
///
/// `payloads[from][to]` is what `from` owes `to` (`None` = nothing);
/// `expected[to]` lists the senders `to` waits for. Frames failing envelope
/// validation, carrying a stale epoch or the wrong kind, arriving twice, or
/// failing semantic `parse` are discarded (and logged); missing slots are
/// re-requested up to `max_retries` times, with retransmitted bytes counted
/// into `retransmit_bytes`. Returns the validated values plus the `(to,
/// from)` pairs still missing after the final attempt — the caller decides
/// whether that means degradation or a dead rank.
///
/// Every send and drain runs on the caller's thread in rank order, so the
/// resulting [`FaultLog`] is deterministic for a given plan.
#[allow(clippy::too_many_arguments)]
fn exchange_validated<T>(
    endpoints: &mut [FaultyEndpoint],
    log: &SharedFaultLog,
    kind: MsgKind,
    epoch: u64,
    payloads: &[Vec<Option<Bytes>>],
    expected: &[Vec<usize>],
    max_retries: u32,
    retransmit_bytes: &mut usize,
    parse: impl Fn(usize, usize, &[u8]) -> Result<T, String>,
) -> (Vec<Vec<Option<T>>>, Vec<(usize, usize)>) {
    let p = endpoints.len();
    for from in 0..p {
        for to in 0..p {
            if let Some(pl) = &payloads[from][to] {
                endpoints[from].send_framed(to, kind, epoch, 0, pl);
            }
        }
        endpoints[from].flush_reordered();
    }
    let mut got: Vec<Vec<Option<T>>> = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut attempt = 0u32;
    loop {
        for to in 0..p {
            while let Some(msg) = endpoints[to].try_recv() {
                let discard = |action: RecoveryAction, peer: Option<usize>, detail: String| {
                    log.record_recovery(RecoveryEvent {
                        epoch,
                        rank: to,
                        peer,
                        kind: Some(kind),
                        action,
                        detail,
                    });
                };
                let env = match envelope::open(&msg.payload) {
                    Ok(env) => env,
                    Err(e) => {
                        discard(RecoveryAction::DiscardCorrupt, Some(msg.from), e.to_string());
                        continue;
                    }
                };
                let from = env.from;
                if env.epoch != epoch {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(from),
                        format!("frame from epoch {}", env.epoch),
                    );
                    continue;
                }
                if env.kind != kind {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(from),
                        format!("late {:?} frame during {kind:?} phase", env.kind),
                    );
                    continue;
                }
                if from >= p || !expected[to].contains(&from) {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(from),
                        "unexpected sender".to_string(),
                    );
                    continue;
                }
                if got[to][from].is_some() {
                    discard(
                        RecoveryAction::DiscardDuplicate,
                        Some(from),
                        "extra copy discarded".to_string(),
                    );
                    continue;
                }
                match parse(to, from, env.payload) {
                    Ok(v) => {
                        // Validated arrival closes the flow's lifecycle; the
                        // id rode inside the envelope, so reordered and
                        // delayed frames settle their own flow.
                        endpoints[to].flows().deliver(env.flow, env.seq);
                        got[to][from] = Some(v);
                    }
                    Err(why) => discard(RecoveryAction::DiscardCorrupt, Some(from), why),
                }
            }
        }
        let missing: Vec<(usize, usize)> = (0..p)
            .flat_map(|to| {
                expected[to]
                    .iter()
                    .filter(|&&f| got[to][f].is_none())
                    .map(move |&f| (to, f))
                    .collect::<Vec<_>>()
            })
            .collect();
        if missing.is_empty() || attempt >= max_retries {
            return (got, missing);
        }
        attempt += 1;
        for &(to, from) in &missing {
            if let Some(pl) = &payloads[from][to] {
                log.record_recovery(RecoveryEvent {
                    epoch,
                    rank: to,
                    peer: Some(from),
                    kind: Some(kind),
                    action: RecoveryAction::Retransmit,
                    detail: format!("attempt {attempt}"),
                });
                *retransmit_bytes += pl.len();
                endpoints[from].send_framed(to, kind, epoch, attempt, pl);
            }
        }
        for ep in endpoints.iter_mut() {
            ep.flush_reordered();
        }
    }
}

/// Factor `p = px·py` with `px ≈ √p` (the paper's DD-process grid).
pub fn factor_ranks(p: usize) -> (usize, usize) {
    let mut px = (p as f64).sqrt() as usize;
    while px > 1 && p % px != 0 {
        px -= 1;
    }
    (px.max(1), p / px.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;
    use bonsai_tree::direct::direct_self_forces;

    fn small_cluster(n: usize, p: usize, seed: u64) -> Cluster {
        let ic = plummer_sphere(n, seed);
        Cluster::new(ic, p, ClusterConfig::default())
    }

    #[test]
    fn factorization() {
        assert_eq!(factor_ranks(16), (4, 4));
        assert_eq!(factor_ranks(12), (3, 4));
        assert_eq!(factor_ranks(7), (1, 7));
        assert_eq!(factor_ranks(1), (1, 1));
    }

    #[test]
    fn particles_conserved_across_steps() {
        let mut c = small_cluster(4000, 8, 1);
        assert_eq!(c.total_particles(), 4000);
        for _ in 0..3 {
            c.step();
        }
        assert_eq!(c.total_particles(), 4000);
        let mut ids: Vec<u64> = c.gather().id;
        ids.sort_unstable();
        assert_eq!(ids, (0..4000).collect::<Vec<u64>>());
    }

    #[test]
    fn fault_free_runs_have_clean_logs() {
        let mut c = small_cluster(2000, 5, 9);
        for _ in 0..2 {
            c.step();
        }
        assert!(c.fault_log().is_clean());
        assert_eq!(c.last_measurements.retransmit_bytes, 0);
        assert_eq!(c.last_measurements.degraded_lets, 0);
        assert!(c.last_measurements.faults.is_clean());
    }

    #[test]
    fn distributed_forces_match_direct_reference() {
        let n = 3000;
        let ic = plummer_sphere(n, 2);
        let cfg = ClusterConfig::default();
        let (reference, _) = direct_self_forces(&ic, cfg.eps, cfg.g);
        let ref_by_id: std::collections::HashMap<u64, Vec3> = ic
            .id
            .iter()
            .zip(&reference.acc)
            .map(|(&i, &a)| (i, a))
            .collect();

        let c = Cluster::new(ic, 7, cfg);
        let acc = c.accelerations_by_id();
        assert_eq!(acc.len(), n);
        let mut rms = 0.0;
        for (id, a) in &acc {
            let r = ref_by_id[id];
            let e = (*a - r).norm() / r.norm().max(1e-12);
            rms += e * e;
        }
        let rms = (rms / n as f64).sqrt();
        assert!(rms < 3e-3, "distributed vs direct rms error {rms}");
        // LETs were essentially never violated.
        let frac = c.last_measurements.forced_cuts as f64
            / (c.last_measurements.counts_lets.iter().map(|x| x.pc).sum::<u64>() as f64).max(1.0);
        assert!(frac < 1e-3, "forced-cut fraction {frac}");
    }

    #[test]
    fn distributed_matches_single_process_accuracy() {
        // The distributed result must be as accurate as a single-process
        // tree walk at the same θ (paper: identical algorithm).
        let n = 3000;
        let ic = plummer_sphere(n, 3);
        let cfg = ClusterConfig::default();
        let (reference, _) = direct_self_forces(&ic, cfg.eps, cfg.g);

        // Single-process error:
        let tree = Tree::build(ic.clone(), cfg.tree);
        let (single, _) = walk::self_gravity(
            &tree,
            &WalkParams {
                theta: cfg.theta,
                eps: cfg.eps,
                g: cfg.g,
                use_quadrupole: true,
            },
        );
        let mut ref_sorted = Forces::zeros(n);
        for i in 0..n {
            let idx = tree.particles.id[i] as usize;
            ref_sorted.acc[i] = reference.acc[idx];
            ref_sorted.pot[i] = reference.pot[idx];
        }
        let err_single = single.rms_rel_acc_error(&ref_sorted);

        // Distributed error:
        let c = Cluster::new(ic.clone(), 5, cfg);
        let acc = c.accelerations_by_id();
        let mut err2 = 0.0;
        for i in 0..n {
            let a = acc[&(i as u64)];
            let r = reference.acc[i];
            let e = (a - r).norm() / r.norm().max(1e-12);
            err2 += e * e;
        }
        let err_dist = (err2 / n as f64).sqrt();
        assert!(
            err_dist < 2.0 * err_single + 1e-6,
            "distributed {err_dist} vs single {err_single}"
        );
    }

    #[test]
    fn load_stays_within_cap() {
        let mut c = small_cluster(6000, 6, 4);
        for _ in 0..2 {
            c.step();
        }
        let imb = c.last_measurements.imbalance;
        assert!(imb <= 1.4, "imbalance {imb} exceeds cap era");
    }

    #[test]
    fn distant_ranks_reuse_boundaries() {
        // Two well-separated galaxies: ranks inside the same blob are near
        // neighbours needing dedicated LETs, while cross-blob pairs are far
        // enough to use the broadcast boundary tree as the LET (the paper's
        // "~40 nearest neighbours" situation in miniature).
        let mut a = plummer_sphere(4000, 5);
        let b = plummer_sphere(4000, 55);
        for i in 0..b.len() {
            a.push(b.pos[i] + Vec3::new(60.0, 0.0, 0.0), b.vel[i], b.mass[i], 4000 + b.id[i]);
        }
        let c = Cluster::new(a, 8, ClusterConfig::default());
        let m = &c.last_measurements;
        let total_pairs = 8 * 7;
        let dedicated: usize = m.let_neighbors.iter().sum();
        assert!(
            dedicated < total_pairs,
            "every pair needed a dedicated LET ({dedicated}/{total_pairs})"
        );
        assert!(dedicated > 0, "adjacent ranks must need dedicated LETs");
    }

    #[test]
    fn energy_conserved_by_distributed_leapfrog() {
        let n = 2000;
        let ic = plummer_sphere(n, 6);
        let e0 = bonsai_tree::direct::total_energy(&ic, 0.01, 1.0);
        let mut cfg = ClusterConfig::default();
        cfg.eps = 0.01;
        cfg.dt = 0.005;
        let mut c = Cluster::new(ic, 4, cfg);
        // The distributed on-the-fly energy monitor must agree with the
        // direct-summation energy at start…
        let r0 = c.energy_report();
        assert!(
            ((r0.total() - e0) / e0).abs() < 2e-3,
            "tree energy {} vs direct {e0}",
            r0.total()
        );
        for _ in 0..20 {
            c.step();
        }
        let final_p = c.gather();
        let e1 = bonsai_tree::direct::total_energy(&final_p, 0.01, 1.0);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 5e-3, "energy drift {drift} over 20 distributed steps");
        // …and track the drift itself.
        let r1 = c.energy_report();
        assert!(r1.drift_from(&r0) < 5e-3, "monitored drift {}", r1.drift_from(&r0));
        assert!((r1.virial_ratio() - 0.5).abs() < 0.1);
    }

    #[test]
    fn breakdown_is_populated_and_gravity_dominates() {
        let mut c = small_cluster(8000, 4, 7);
        let b = c.step();
        assert_eq!(b.gpus, 4);
        assert!(b.gravity_local > 0.0);
        assert!(b.gravity_lets > 0.0);
        assert!(b.pp_per_particle > 0.0 && b.pc_per_particle > 0.0);
        assert!(b.total() > 0.0);
        assert_eq!(b.recovery, 0.0, "no recovery cost without faults");
        // At small N the GPU model still makes gravity the dominant phase
        // relative to tree build.
        assert!(b.gravity_local + b.gravity_lets > b.tree_construction);
    }

    #[test]
    fn breakdown_reduces_from_registry() {
        // The registry view must reproduce the returned breakdown exactly:
        // instrumentation changes observation, not physics or timing.
        let mut c = small_cluster(3000, 4, 12);
        let b = c.step();
        let r = c.breakdown_from_metrics();
        assert_eq!(r.gpus, b.gpus);
        assert_eq!(r.particles_per_gpu, b.particles_per_gpu);
        assert_eq!(r.sort, b.sort);
        assert_eq!(r.domain_update, b.domain_update);
        assert_eq!(r.gravity_local, b.gravity_local);
        assert_eq!(r.gravity_lets, b.gravity_lets);
        assert_eq!(r.non_hidden_comm, b.non_hidden_comm);
        assert_eq!(r.recovery, b.recovery);
        assert_eq!(r.integration, b.integration);
        assert_eq!(r.load_balance, b.load_balance);
        assert_eq!(r.orchestration, b.orchestration);
        assert_eq!(r.unbalance, b.unbalance);
        assert_eq!(r.other(), b.other());
        assert_eq!(r.pp_per_particle, b.pp_per_particle);
        assert_eq!(r.pc_per_particle, b.pc_per_particle);
        assert_eq!(r.total(), b.total());
    }

    #[test]
    fn trace_records_every_phase_and_lays_steps_out_sequentially() {
        let mut c = small_cluster(2000, 3, 13);
        c.step();
        let store = c.trace();
        // Construction runs epoch 1; the step runs epoch 2.
        assert_eq!(store.last_step(), Some(2));
        for r in 0..3 {
            let names: Vec<&str> = store
                .spans_for(r, 2)
                .filter(|s| s.lane == bonsai_obs::Lane::Gpu)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(
                names,
                ["sort", "domain", "build", "props", "local", "lets", "integrate"]
            );
            let comm: Vec<&str> = store
                .spans_for(r, 2)
                .filter(|s| s.lane == bonsai_obs::Lane::Comm)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(comm, ["let-comm"]);
            // The CPU lane carries the bookkeeping tail; every rank but the
            // straggler also records a cross-rank barrier wait.
            let cpu: Vec<&str> = store
                .spans_for(r, 2)
                .filter(|s| s.lane == bonsai_obs::Lane::Cpu)
                .map(|s| s.name.as_str())
                .collect();
            assert!(cpu.starts_with(&["balance", "orchestrate"]), "cpu lane {cpu:?}");
        }
        let waits = store
            .spans()
            .iter()
            .filter(|s| s.step == 2 && s.name == "wait")
            .count();
        assert!(waits >= 1, "expected at least one barrier wait span");
        // Gravity spans carry the device model's annotations.
        let local = store
            .spans_for(0, 2)
            .find(|s| s.name == "local")
            .expect("local span");
        assert!(local.args.iter().any(|(k, _)| *k == "gflops"));
        assert!(local.args.iter().any(|(k, _)| *k == "occupancy"));
        // Counters accumulate across epochs; gauges hold the latest.
        assert!(c.metrics().counter_family_total("bonsai_walk_flops_total") > 0);
        assert!(c.metrics().counter_family_total("bonsai_net_kind_bytes_total") > 0);
        // Epoch 2 starts on the global clock where epoch 1 ended.
        let e1_end = store
            .spans()
            .iter()
            .filter(|s| s.step == 1)
            .map(|s| s.end)
            .fold(0.0, f64::max);
        let e2_start = store
            .spans()
            .iter()
            .filter(|s| s.step == 2)
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        assert!(e2_start >= e1_end - 1e-12, "epochs overlap on the clock");
    }

    #[test]
    fn single_rank_cluster_equals_single_process() {
        let n = 1500;
        let ic = plummer_sphere(n, 8);
        let cfg = ClusterConfig::default();
        let tree = Tree::build(ic.clone(), cfg.tree);
        let (single, _) = walk::self_gravity(
            &tree,
            &WalkParams {
                theta: cfg.theta,
                eps: cfg.eps,
                g: cfg.g,
                use_quadrupole: true,
            },
        );
        let c = Cluster::new(ic, 1, cfg);
        let acc = c.accelerations_by_id();
        for i in 0..n {
            let a = acc[&tree.particles.id[i]];
            assert!(
                (a - single.acc[i]).norm() <= 1e-12 * single.acc[i].norm().max(1e-30),
                "particle {i} differs"
            );
        }
    }
}
