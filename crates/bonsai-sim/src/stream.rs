//! In-run telemetry streaming: the cluster-side tap that feeds
//! `bonsai-obs`'s [`TelemetryBus`] each step and self-meters what the
//! whole observability stack costs.
//!
//! [`StreamTap`] rides inside [`Cluster::step`] after the long-run
//! monitor (take/put-back, like the monitor itself): each step it prices
//! the step's observability work (spans, gauges, rule evaluations, flight
//! copies) through an [`OverheadMeter`], publishes the step's telemetry
//! frames — step header, per-phase seconds, key gauges, flow-conservation
//! digest, and any alert transitions the health rules fired — and closes
//! the meter against the step's modelled duration. The resulting overhead
//! fraction is written as the `bonsai_obs_overhead_fraction` gauge and fed
//! to the tap's *own* health monitor carrying [`overhead_rule`] (the
//! long-run monitor samples gauges *before* the tap runs, so the budget
//! rule must live here to see the fraction), whose transitions are
//! themselves published as must-deliver alert frames.
//!
//! Everything runs under the modelled clock: frame timestamps are the
//! trace makespan and costs are op counts × [`ObsCostModel`] rates, so a
//! fixed-seed run streams byte-identical frames.

use crate::breakdown::StepBreakdown;
use crate::cluster::Cluster;
use bonsai_obs::health::{AlertEvent, HealthMonitor};
use bonsai_obs::overhead::{overhead_rule, ObsCostModel, OverheadMeter, OVERHEAD_GAUGE};
use bonsai_obs::stream::{FrameKind, FrameValue, SubscriberConfig, TelemetryBus};

/// Configuration of the streaming tap.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Subscribers to attach at enable time (name + ring capacity).
    pub subscribers: Vec<SubscriberConfig>,
    /// Sabotage mode: the bus stalls the producer on a full ring instead
    /// of dropping. Never set in honest runs — exists so the CI gate can
    /// prove the overhead budget catches a bus that blocks the hot path.
    pub block_on_full: bool,
    /// Cost model pricing the observability ops.
    pub cost: ObsCostModel,
    /// Unlabelled gauges streamed in each step's `gauges` frame.
    pub gauges: Vec<String>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            subscribers: Vec::new(),
            block_on_full: false,
            cost: ObsCostModel::default(),
            gauges: [
                "bonsai_energy_drift",
                "bonsai_flop_residual",
                "bonsai_hidden_comm_fraction",
                "bonsai_gpu_gflops",
                "bonsai_step_seconds",
                "bonsai_recovery_actions",
                "bonsai_degraded_lets",
                "bonsai_retransmit_bytes",
                "bonsai_particle_imbalance",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        }
    }
}

/// The per-run streaming state: bus, overhead meter, and the tap's own
/// health monitor enforcing the observability budget.
#[derive(Clone, Debug)]
pub struct StreamTap {
    cfg: StreamConfig,
    bus: TelemetryBus,
    meter: OverheadMeter,
    health: HealthMonitor,
    prev_stalls: u64,
}

impl StreamTap {
    /// Build a tap: attaches every configured subscriber and arms the
    /// overhead budget rule.
    pub fn new(cfg: StreamConfig) -> Self {
        let mut bus = TelemetryBus::new();
        for sub in &cfg.subscribers {
            bus.add_subscriber(sub.clone());
        }
        bus.set_block_on_full(cfg.block_on_full);
        let meter = OverheadMeter::new(cfg.cost.clone());
        Self {
            cfg,
            bus,
            meter,
            health: HealthMonitor::new(vec![overhead_rule()]),
            prev_stalls: 0,
        }
    }

    /// The telemetry bus (accounting reports, lag).
    pub fn bus(&self) -> &TelemetryBus {
        &self.bus
    }

    /// Mutable bus access — subscribers poll their rings through this.
    pub fn bus_mut(&mut self) -> &mut TelemetryBus {
        &mut self.bus
    }

    /// The overhead meter (run totals, mean/max fraction).
    pub fn meter(&self) -> &OverheadMeter {
        &self.meter
    }

    /// The tap's own health monitor (the `obs-overhead` budget rule).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The configuration the tap was enabled with.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Publish one frame and charge its encoding + fan-out to the meter.
    fn publish(
        &mut self,
        step: u64,
        kind: FrameKind,
        at: f64,
        fields: Vec<(String, FrameValue)>,
    ) {
        let bytes = self.bus.publish(step, kind, at, fields);
        let cost = self.meter.cost().clone();
        self.meter.charge_ops("encode", bytes as u64, cost.encode_byte_s);
        self.meter.charge_ops(
            "publish",
            self.bus.subscriber_count() as u64,
            cost.publish_s,
        );
        let stalls = self.bus.stalls();
        self.meter
            .charge_ops("stall", stalls - self.prev_stalls, cost.stall_s);
        self.prev_stalls = stalls;
    }

    /// A completed view change's telemetry surface: one must-deliver
    /// `view-change` frame. Called by the cluster between steps (its
    /// charges fold into the next step's overhead sample).
    pub(crate) fn publish_view_change(
        &mut self,
        cluster: &Cluster,
        change: &bonsai_net::membership::ViewChange,
    ) {
        let at = cluster.trace().makespan();
        let fields = vec![
            (
                "from_world".to_string(),
                FrameValue::U64(change.from_world as u64),
            ),
            (
                "to_world".to_string(),
                FrameValue::U64(change.to_world as u64),
            ),
            ("to_view".to_string(), FrameValue::U64(change.to_view)),
            (
                "migrated_particles".to_string(),
                FrameValue::U64(change.migrated_particles as u64),
            ),
            (
                "migrated_bytes".to_string(),
                FrameValue::U64(change.migrated_bytes as u64),
            ),
        ];
        self.publish(cluster.step_count(), FrameKind::ViewChange, at, fields);
    }

    /// One step's streaming: price the step's observability work, publish
    /// the step's frames, close the overhead sample, and run the budget
    /// rule. `fired` is the alert transitions the long-run monitor raised
    /// this step (published as must-deliver frames).
    ///
    /// Called by [`Cluster::step`] with the tap taken out of the cluster,
    /// so `cluster` is freely borrowable.
    pub(crate) fn observe(
        &mut self,
        cluster: &mut Cluster,
        b: &StepBreakdown,
        fired: &[AlertEvent],
    ) {
        let step = cluster.step_count();
        let epoch = cluster.current_epoch();
        let at = cluster.trace().makespan();
        let cost = self.meter.cost().clone();

        // Price what the observability stack did this step, from the
        // observable op counts: the trace events the step recorded, the
        // gauges the registry carries, and (when long-run monitoring is
        // on) the rule evaluations and flight-window copies it performed.
        let spans = cluster.trace().spans().iter().filter(|s| s.step == epoch).count() as u64;
        let instants = cluster
            .trace()
            .instants()
            .iter()
            .filter(|i| i.step == epoch)
            .count() as u64;
        let flow_points = cluster
            .trace()
            .flow_points()
            .iter()
            .filter(|p| p.step == epoch)
            .count() as u64;
        self.meter.charge_ops("trace", spans, cost.span_record_s);
        self.meter
            .charge_ops("trace", instants, cost.instant_record_s);
        self.meter
            .charge_ops("trace", flow_points, cost.flow_point_s);
        let gauges = cluster.metrics().gauges().count() as u64;
        self.meter.charge_ops("metrics", gauges, cost.gauge_sample_s);
        if let Some(lr) = cluster.longrun() {
            let rules = lr.config().rules.len() as u64;
            self.meter
                .charge_ops("health", rules * gauges, cost.rule_eval_s);
            self.meter.charge_ops("flight", spans, cost.flight_copy_s);
        }

        // The step's frames, in a fixed kind order.
        let view = cluster.view().number;
        self.publish(
            step,
            FrameKind::StepHeader,
            at,
            vec![
                ("epoch".to_string(), FrameValue::U64(epoch)),
                (
                    "world".to_string(),
                    FrameValue::U64(cluster.rank_count() as u64),
                ),
                (
                    "particles".to_string(),
                    FrameValue::U64(cluster.total_particles() as u64),
                ),
                ("view".to_string(), FrameValue::U64(view)),
                ("time".to_string(), FrameValue::F64(cluster.time())),
            ],
        );
        let pt = b.phase_times();
        let mut phases: Vec<(String, FrameValue)> = crate::breakdown::PHASES
            .iter()
            .map(|&ph| (ph.to_string(), FrameValue::F64(pt.get(ph))))
            .collect();
        phases.push(("total".to_string(), FrameValue::F64(b.total())));
        self.publish(step, FrameKind::PhaseSample, at, phases);
        let gauge_fields: Vec<(String, FrameValue)> = self
            .cfg
            .gauges
            .clone()
            .into_iter()
            .filter_map(|name| {
                cluster
                    .metrics()
                    .gauge(&name, &[])
                    .map(|v| (name, FrameValue::F64(v)))
            })
            .collect();
        self.publish(step, FrameKind::Gauges, at, gauge_fields);
        let cons = cluster.flow_conservation();
        self.publish(
            step,
            FrameKind::FlowDigest,
            at,
            vec![
                ("sealed".to_string(), FrameValue::U64(cons.sealed)),
                ("delivered".to_string(), FrameValue::U64(cons.delivered)),
                ("fallback".to_string(), FrameValue::U64(cons.fallback)),
                ("dead".to_string(), FrameValue::U64(cons.dead)),
                ("pending".to_string(), FrameValue::U64(cons.pending)),
                (
                    "holds".to_string(),
                    FrameValue::U64(u64::from(cons.holds())),
                ),
            ],
        );
        for ev in fired {
            self.publish(step, FrameKind::Alert, at, alert_fields(ev));
        }

        // Close the step's overhead sample and run the budget rule. The
        // fraction lands as a step gauge so exporters and dashboards see
        // it; budget transitions are themselves must-deliver frames (their
        // own encoding cost lands in the next step's sample).
        let sample = self.meter.end_step(step, b.total());
        cluster
            .registry_mut()
            .step_gauge_set(OVERHEAD_GAUGE, &[], sample.fraction);
        for (cat, secs) in &sample.categories {
            cluster.registry_mut().step_gauge_set(
                "bonsai_obs_overhead_seconds",
                &[("category", cat)],
                *secs,
            );
        }
        let budget_fired = self.health.observe(step, OVERHEAD_GAUGE, sample.fraction);
        for ev in &budget_fired {
            self.publish(step, FrameKind::Alert, at, alert_fields(ev));
        }
    }
}

fn alert_fields(ev: &AlertEvent) -> Vec<(String, FrameValue)> {
    vec![
        ("rule".to_string(), FrameValue::Str(ev.rule.clone())),
        ("metric".to_string(), FrameValue::Str(ev.metric.clone())),
        (
            "kind".to_string(),
            FrameValue::Str(ev.kind.name().to_string()),
        ),
        (
            "severity".to_string(),
            FrameValue::Str(ev.severity.name().to_string()),
        ),
        ("value".to_string(), FrameValue::F64(ev.value)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use bonsai_ic::plummer_sphere;
    use bonsai_obs::overhead::OVERHEAD_BUDGET_FRACTION;

    fn streaming_cluster(block_on_full: bool, capacity: usize) -> Cluster {
        let ic = plummer_sphere(256, 42);
        let mut c = Cluster::new(
            ic,
            2,
            ClusterConfig {
                dt: 1.0e-3,
                ..ClusterConfig::default()
            },
        );
        c.enable_longrun(crate::longrun::LongRunConfig::default());
        c.enable_streaming(StreamConfig {
            subscribers: vec![SubscriberConfig::new("watch", capacity)],
            block_on_full,
            ..StreamConfig::default()
        });
        c
    }

    #[test]
    fn tap_publishes_the_step_frame_set_each_step() {
        let mut c = streaming_cluster(false, 256);
        for _ in 0..4 {
            c.step();
        }
        let tap = c.stream().expect("streaming enabled");
        let p = tap.bus().published();
        assert_eq!(p.get("step-header"), Some(&4));
        assert_eq!(p.get("phase-sample"), Some(&4));
        assert_eq!(p.get("gauges"), Some(&4));
        assert_eq!(p.get("flow-digest"), Some(&4));
        assert!(tap.bus().accounting_violation().is_none());
        // Frames carry the streamed gauges and step fields.
        let frames = c.stream_mut().unwrap().bus_mut().poll(0, usize::MAX);
        let gauges = frames
            .iter()
            .find(|f| f.kind == FrameKind::Gauges)
            .expect("gauges frame");
        assert!(gauges.f64("bonsai_step_seconds").unwrap() > 0.0);
        let header = frames
            .iter()
            .find(|f| f.kind == FrameKind::StepHeader)
            .expect("header frame");
        assert_eq!(header.f64("world"), Some(2.0));
        assert_eq!(header.f64("particles"), Some(256.0));
    }

    #[test]
    fn honest_overhead_stays_inside_budget() {
        let mut c = streaming_cluster(false, 256);
        for _ in 0..5 {
            c.step();
        }
        let tap = c.take_stream().expect("streaming enabled");
        assert!(tap.meter().steps() == 5);
        assert!(
            tap.meter().max_fraction() < OVERHEAD_BUDGET_FRACTION,
            "honest streaming must fit the budget, got {}",
            tap.meter().max_fraction()
        );
        assert!(tap.health().events().is_empty());
    }

    #[test]
    fn block_on_full_sabotage_blows_the_budget() {
        // A one-slot ring that is never polled: every publish past the
        // first stalls the producer, and the stall charges must open the
        // obs-overhead alert.
        let mut c = streaming_cluster(true, 1);
        for _ in 0..5 {
            c.step();
        }
        let tap = c.take_stream().unwrap();
        assert!(tap.bus().stalls() > 0);
        assert!(tap.meter().max_fraction() > OVERHEAD_BUDGET_FRACTION);
        assert!(
            tap.health()
                .events()
                .iter()
                .any(|e| e.rule == "obs-overhead"),
            "budget rule must fire under the stalling bus"
        );
    }

    #[test]
    fn streaming_is_deterministic_and_does_not_perturb_physics() {
        let run = |streaming: bool| {
            let ic = plummer_sphere(256, 42);
            let mut c = Cluster::new(
                ic,
                2,
                ClusterConfig {
                    dt: 1.0e-3,
                    ..ClusterConfig::default()
                },
            );
            c.enable_longrun(crate::longrun::LongRunConfig::default());
            if streaming {
                c.enable_streaming(StreamConfig {
                    subscribers: vec![SubscriberConfig::new("watch", 64)],
                    ..StreamConfig::default()
                });
            }
            for _ in 0..3 {
                c.step();
            }
            let e = c.energy_report();
            let frames = c.take_stream().map(|mut t| {
                t.bus_mut()
                    .poll(0, usize::MAX)
                    .iter()
                    .map(|f| f.encode())
                    .collect::<Vec<_>>()
                    .join("\n")
            });
            (e.total(), frames)
        };
        let (e1, f1) = run(true);
        let (e2, f2) = run(true);
        let (e0, _) = run(false);
        assert_eq!(e1, e2);
        assert_eq!(f1.as_deref(), f2.as_deref(), "frames are byte-identical");
        assert_eq!(e1, e0, "streaming does not perturb the physics");
    }
}
