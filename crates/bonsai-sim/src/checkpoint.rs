//! Distributed checkpointing (§VI-C).
//!
//! "…there was a few percent I/O-related overhead related to storing
//! intermediate simulation snapshots (for the dual purpose of restarting
//! and detailed analysis)." Each rank writes its own shard (as the real
//! code does: 18600 files, no serial gather), plus a small manifest. On
//! restart the shards are read back and the cluster rebuilt — rank count
//! may even *change* between runs, since the first decomposition rebalances
//! everything anyway.

use crate::cluster::{Cluster, ClusterConfig};
use bonsai_core::snapshot::{read_snapshot, write_snapshot};
use bonsai_tree::Particles;
use std::io;
use std::path::{Path, PathBuf};

/// Write a per-rank sharded checkpoint under `dir`.
///
/// Layout: `dir/manifest.txt` + `dir/shard_<rank>.bin`.
pub fn write_checkpoint(cluster: &Cluster, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let p = cluster.rank_count();
    let mut manifest = format!("bonsai-checkpoint v1\nranks {p}\ntime {}\nsteps {}\n", cluster.time(), cluster.step_count());
    for r in 0..p {
        let shard = shard_path(dir, r);
        let particles = cluster.rank_particles(r);
        write_snapshot(&shard, particles, cluster.time())?;
        manifest.push_str(&format!("shard_{r}.bin {}\n", particles.len()));
    }
    std::fs::write(dir.join("manifest.txt"), manifest)
}

fn shard_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("shard_{rank}.bin"))
}

/// Read a sharded checkpoint back into `(particles, time)`.
pub fn read_checkpoint(dir: &Path) -> io::Result<(Particles, f64)> {
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let mut lines = manifest.lines();
    let header = lines.next().unwrap_or("");
    if header != "bonsai-checkpoint v1" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad manifest header"));
    }
    let ranks: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("ranks "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad rank count"))?;
    let mut all = Particles::new();
    let mut time = 0.0;
    for r in 0..ranks {
        let (shard, t) = read_snapshot(shard_path(dir, r))?;
        all.extend_from(&shard);
        time = t;
    }
    Ok((all, time))
}

/// Restore a cluster from a checkpoint with a (possibly different) rank
/// count.
pub fn restore_cluster(dir: &Path, ranks: usize, cfg: ClusterConfig) -> io::Result<Cluster> {
    let (particles, _time) = read_checkpoint(dir)?;
    Ok(Cluster::new(particles, ranks, cfg))
}

/// I/O-overhead model: the paper reports a "few percent" of step time for
/// snapshot writes. Given a snapshot cadence and per-rank data volume,
/// estimate the fractional overhead on a parallel filesystem with
/// `fs_bandwidth_per_node` bytes/s per node.
pub fn io_overhead_fraction(
    particles_per_rank: u64,
    step_seconds: f64,
    steps_per_snapshot: u64,
    fs_bandwidth_per_node: f64,
) -> f64 {
    let bytes = particles_per_rank as f64 * 64.0; // snapshot record size
    let write_time = bytes / fs_bandwidth_per_node;
    write_time / (step_seconds * steps_per_snapshot as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("bonsai_ckpt").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_round_trip_preserves_everything() {
        let ic = plummer_sphere(1200, 1);
        let mut c = Cluster::new(ic, 4, ClusterConfig::default());
        c.step();
        c.step();
        let dir = tmp("round_trip");
        write_checkpoint(&c, &dir).unwrap();
        let (all, time) = read_checkpoint(&dir).unwrap();
        assert_eq!(all.len(), 1200);
        assert!((time - c.time()).abs() < 1e-15);
        let mut ids = all.id.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..1200).collect::<Vec<u64>>());
        assert!((all.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn restart_with_different_rank_count() {
        let ic = plummer_sphere(800, 2);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        let dir = tmp("rescale");
        write_checkpoint(&c, &dir).unwrap();
        let c2 = restore_cluster(&dir, 7, ClusterConfig::default()).unwrap();
        assert_eq!(c2.rank_count(), 7);
        assert_eq!(c2.total_particles(), 800);
    }

    #[test]
    fn restart_trajectory_matches_uninterrupted_run() {
        // Physics must continue identically: compare particle positions of
        // (run 4 steps) vs (run 2, checkpoint, restore, run 2).
        let ic = plummer_sphere(600, 3);
        let cfg = ClusterConfig::default();
        let mut a = Cluster::new(ic.clone(), 4, cfg.clone());
        for _ in 0..4 {
            a.step();
        }

        let mut b = Cluster::new(ic, 4, cfg.clone());
        b.step();
        b.step();
        let dir = tmp("traj");
        write_checkpoint(&b, &dir).unwrap();
        let mut b2 = restore_cluster(&dir, 4, cfg).unwrap();
        b2.step();
        b2.step();

        // Compare by id. Restart re-runs the decomposition on the same
        // state; positions should agree to tight tolerance.
        let mut pa: Vec<(u64, bonsai_util::Vec3)> = {
            let g = a.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        let mut pb: Vec<(u64, bonsai_util::Vec3)> = {
            let g = b2.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        pa.sort_by_key(|(i, _)| *i);
        pb.sort_by_key(|(i, _)| *i);
        // The restored cluster re-decomposes from fresh load weights, so
        // force summation *order* differs at the 1e-15 level; two steps of
        // N-body dynamics amplify that slightly. Positions must still agree
        // to far better than any physical scale (softening is 1e-2).
        for ((ia, xa), (ib, xb)) in pa.iter().zip(&pb) {
            assert_eq!(ia, ib);
            assert!(
                (*xa - *xb).norm() < 1e-6,
                "id {ia} diverged after restart: {xa} vs {xb}"
            );
        }
    }

    #[test]
    fn corrupted_manifest_rejected() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "not a checkpoint").unwrap();
        assert!(read_checkpoint(&dir).is_err());
    }

    #[test]
    fn io_overhead_is_few_percent_at_paper_scale() {
        // 13M particles/rank, 4.6 s steps, snapshot every 200 steps, ~1 GB/s
        // effective per-node share of the Lustre filesystem.
        let f = io_overhead_fraction(13_000_000, 4.6, 200, 1.0e9);
        assert!((0.0001..0.05).contains(&f), "I/O overhead fraction {f}");
    }
}
