//! Distributed checkpointing (§VI-C).
//!
//! "…there was a few percent I/O-related overhead related to storing
//! intermediate simulation snapshots (for the dual purpose of restarting
//! and detailed analysis)." Each rank writes its own shard (as the real
//! code does: 18600 files, no serial gather), plus a small manifest. On
//! restart the shards are read back and the cluster rebuilt — rank count
//! may even *change* between runs, since the first decomposition rebalances
//! everything anyway.
//!
//! The format is built to survive faults: every file is written to a temp
//! name and atomically renamed (a torn write never corrupts an existing
//! checkpoint), the manifest is written *last* so it only ever names shards
//! that are fully on disk, and it records each shard's particle count and
//! CRC-64 so any torn, truncated or bit-flipped shard is detected at read
//! time with an error naming the exact file and field.

use crate::cluster::{Cluster, ClusterConfig};
use bonsai_core::snapshot::{snapshot_from_bytes, snapshot_to_bytes};
use bonsai_tree::Particles;
use bonsai_util::crc64;
use std::io;
use std::path::{Path, PathBuf};

const MANIFEST_HEADER: &str = "bonsai-checkpoint v2";

/// Everything a checkpoint restores.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// All particles, concatenated across shards.
    pub particles: Particles,
    /// Simulation time at the checkpoint.
    pub time: f64,
    /// Completed steps at the checkpoint.
    pub steps: u64,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn shard_name(rank: usize) -> String {
    format!("shard_{rank}.bin")
}

fn shard_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(shard_name(rank))
}

/// Write `bytes` to `path` atomically (temp file + rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Write a per-rank sharded checkpoint under `dir`.
///
/// Layout: `dir/manifest.txt` + `dir/shard_<rank>.bin`. Shards land first,
/// the manifest last; each manifest shard line carries the particle count
/// and CRC-64 of the shard's bytes.
pub fn write_checkpoint(cluster: &Cluster, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let p = cluster.rank_count();
    let mut manifest = format!(
        "{MANIFEST_HEADER}\nranks {p}\ntime {}\nsteps {}\n",
        cluster.time(),
        cluster.step_count()
    );
    for r in 0..p {
        let particles = cluster.rank_particles(r);
        let bytes = snapshot_to_bytes(particles, cluster.time());
        let crc = crc64(&bytes);
        write_atomic(&shard_path(dir, r), &bytes)?;
        manifest.push_str(&format!(
            "{} {} {crc:016x}\n",
            shard_name(r),
            particles.len()
        ));
    }
    write_atomic(&dir.join("manifest.txt"), manifest.as_bytes())
}

/// Parse one `key value` manifest line, reporting which field is missing or
/// malformed.
fn parse_field<T: std::str::FromStr>(line: Option<&str>, key: &str) -> io::Result<T> {
    let l = line.ok_or_else(|| bad(format!("manifest truncated: missing '{key}' line")))?;
    let v = l
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| bad(format!("manifest field '{key}': malformed line '{l}'")))?;
    v.trim()
        .parse()
        .map_err(|_| bad(format!("manifest field '{key}': invalid value '{v}'")))
}

/// Read and validate a sharded checkpoint.
///
/// Every shard's bytes are checked against the manifest's CRC-64 and
/// particle count before the snapshot itself is parsed (which re-validates
/// length and its own checksum), so torn or corrupted shards surface as
/// descriptive errors rather than bad particle data.
pub fn read_checkpoint_full(dir: &Path) -> io::Result<Checkpoint> {
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let mut lines = manifest.lines();
    let header = lines.next().unwrap_or("");
    if header != MANIFEST_HEADER {
        return Err(bad(format!(
            "bad manifest header '{header}' (expected '{MANIFEST_HEADER}')"
        )));
    }
    let ranks: usize = parse_field(lines.next(), "ranks")?;
    let time: f64 = parse_field(lines.next(), "time")?;
    let steps: u64 = parse_field(lines.next(), "steps")?;
    let mut all = Particles::new();
    for r in 0..ranks {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("manifest truncated: missing shard line {r}")))?;
        let mut parts = line.split_whitespace();
        let (name, count, crc_hex) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(n), Some(c), Some(x), None) => (n, c, x),
            _ => return Err(bad(format!("manifest shard line {r} malformed: '{line}'"))),
        };
        if name != shard_name(r) {
            return Err(bad(format!(
                "manifest shard line {r}: unexpected file '{name}' (expected '{}')",
                shard_name(r)
            )));
        }
        let count: usize = count
            .parse()
            .map_err(|_| bad(format!("shard {name}: invalid particle count '{count}'")))?;
        let stated = u64::from_str_radix(crc_hex, 16)
            .map_err(|_| bad(format!("shard {name}: invalid checksum '{crc_hex}'")))?;
        let bytes = std::fs::read(shard_path(dir, r))?;
        let actual = crc64(&bytes);
        if actual != stated {
            return Err(bad(format!(
                "shard {name}: checksum mismatch (manifest {stated:016x}, file {actual:016x}) — \
                 torn or corrupted write"
            )));
        }
        let (shard, _t) = snapshot_from_bytes(&bytes)
            .map_err(|e| bad(format!("shard {name}: {e}")))?;
        if shard.len() != count {
            return Err(bad(format!(
                "shard {name}: {} particles, manifest declares {count}",
                shard.len()
            )));
        }
        all.extend_from(&shard);
    }
    Ok(Checkpoint {
        particles: all,
        time,
        steps,
    })
}

/// Read a sharded checkpoint back into `(particles, time)`.
pub fn read_checkpoint(dir: &Path) -> io::Result<(Particles, f64)> {
    let ck = read_checkpoint_full(dir)?;
    Ok((ck.particles, ck.time))
}

/// Restore a cluster from a checkpoint with a (possibly different) rank
/// count.
pub fn restore_cluster(dir: &Path, ranks: usize, cfg: ClusterConfig) -> io::Result<Cluster> {
    let (particles, _time) = read_checkpoint(dir)?;
    Ok(Cluster::new(particles, ranks, cfg))
}

/// I/O-overhead model: the paper reports a "few percent" of step time for
/// snapshot writes. Given a snapshot cadence and per-rank data volume,
/// estimate the fractional overhead on a parallel filesystem with
/// `fs_bandwidth_per_node` bytes/s per node.
pub fn io_overhead_fraction(
    particles_per_rank: u64,
    step_seconds: f64,
    steps_per_snapshot: u64,
    fs_bandwidth_per_node: f64,
) -> f64 {
    let bytes = particles_per_rank as f64 * 64.0; // snapshot record size
    let write_time = bytes / fs_bandwidth_per_node;
    write_time / (step_seconds * steps_per_snapshot as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("bonsai_ckpt").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_round_trip_preserves_everything() {
        let ic = plummer_sphere(1200, 1);
        let mut c = Cluster::new(ic, 4, ClusterConfig::default());
        c.step();
        c.step();
        let dir = tmp("round_trip");
        write_checkpoint(&c, &dir).unwrap();
        let ck = read_checkpoint_full(&dir).unwrap();
        assert_eq!(ck.particles.len(), 1200);
        assert!((ck.time - c.time()).abs() < 1e-15);
        assert_eq!(ck.steps, 2);
        let mut ids = ck.particles.id.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..1200).collect::<Vec<u64>>());
        assert!((ck.particles.total_mass() - 1.0).abs() < 1e-9);
        // Atomic writes leave no temp files behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "stray temp file {name:?}"
            );
        }
    }

    #[test]
    fn restart_with_different_rank_count() {
        let ic = plummer_sphere(800, 2);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        let dir = tmp("rescale");
        write_checkpoint(&c, &dir).unwrap();
        let c2 = restore_cluster(&dir, 7, ClusterConfig::default()).unwrap();
        assert_eq!(c2.rank_count(), 7);
        assert_eq!(c2.total_particles(), 800);
    }

    #[test]
    fn restart_trajectory_matches_uninterrupted_run() {
        // Physics must continue identically: compare particle positions of
        // (run 4 steps) vs (run 2, checkpoint, restore, run 2).
        let ic = plummer_sphere(600, 3);
        let cfg = ClusterConfig::default();
        let mut a = Cluster::new(ic.clone(), 4, cfg.clone());
        for _ in 0..4 {
            a.step();
        }

        let mut b = Cluster::new(ic, 4, cfg.clone());
        b.step();
        b.step();
        let dir = tmp("traj");
        write_checkpoint(&b, &dir).unwrap();
        let mut b2 = restore_cluster(&dir, 4, cfg).unwrap();
        b2.step();
        b2.step();

        // Compare by id. Restart re-runs the decomposition on the same
        // state; positions should agree to tight tolerance.
        let mut pa: Vec<(u64, bonsai_util::Vec3)> = {
            let g = a.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        let mut pb: Vec<(u64, bonsai_util::Vec3)> = {
            let g = b2.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        pa.sort_by_key(|(i, _)| *i);
        pb.sort_by_key(|(i, _)| *i);
        // The restored cluster re-decomposes from fresh load weights, so
        // force summation *order* differs at the 1e-15 level; two steps of
        // N-body dynamics amplify that slightly. Positions must still agree
        // to far better than any physical scale (softening is 1e-2).
        for ((ia, xa), (ib, xb)) in pa.iter().zip(&pb) {
            assert_eq!(ia, ib);
            assert!(
                (*xa - *xb).norm() < 1e-6,
                "id {ia} diverged after restart: {xa} vs {xb}"
            );
        }
    }

    #[test]
    fn corrupted_manifest_rejected() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "not a checkpoint").unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(err.to_string().contains("manifest header"), "{err}");
    }

    #[test]
    fn manifest_field_errors_name_the_field() {
        let dir = tmp("fields");
        std::fs::create_dir_all(&dir).unwrap();
        let cases = [
            ("bonsai-checkpoint v2\n", "ranks"),
            ("bonsai-checkpoint v2\nranks two\n", "ranks"),
            ("bonsai-checkpoint v2\nranks 1\ntime soon\n", "time"),
            ("bonsai-checkpoint v2\nranks 1\ntime 0.5\nsteps -3\n", "steps"),
        ];
        for (content, field) in cases {
            std::fs::write(dir.join("manifest.txt"), content).unwrap();
            let err = read_checkpoint(&dir).unwrap_err();
            assert!(
                err.to_string().contains(field),
                "manifest {content:?}: error '{err}' does not name '{field}'"
            );
        }
    }

    #[test]
    fn torn_shard_write_detected() {
        let ic = plummer_sphere(400, 5);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        let dir = tmp("torn");
        write_checkpoint(&c, &dir).unwrap();
        // Simulate a torn write: shard 1 loses its tail.
        let shard = dir.join("shard_1.bin");
        let bytes = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &bytes[..bytes.len() - 17]).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(
            err.to_string().contains("shard_1.bin") && err.to_string().contains("checksum"),
            "{err}"
        );
    }

    #[test]
    fn bit_flipped_shard_detected() {
        let ic = plummer_sphere(300, 6);
        let c = Cluster::new(ic, 2, ClusterConfig::default());
        let dir = tmp("flip");
        write_checkpoint(&c, &dir).unwrap();
        let shard = dir.join("shard_0.bin");
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&shard, bytes).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(err.to_string().contains("shard_0.bin"), "{err}");
    }

    #[test]
    fn io_overhead_is_few_percent_at_paper_scale() {
        // 13M particles/rank, 4.6 s steps, snapshot every 200 steps, ~1 GB/s
        // effective per-node share of the Lustre filesystem.
        let f = io_overhead_fraction(13_000_000, 4.6, 200, 1.0e9);
        assert!((0.0001..0.05).contains(&f), "I/O overhead fraction {f}");
    }
}
