//! Distributed checkpointing (§VI-C).
//!
//! "…there was a few percent I/O-related overhead related to storing
//! intermediate simulation snapshots (for the dual purpose of restarting
//! and detailed analysis)." Each rank writes its own shard (as the real
//! code does: 18600 files, no serial gather), plus a small manifest. On
//! restart the shards are read back and the cluster rebuilt — rank count
//! may even *change* between runs, since the first decomposition rebalances
//! everything anyway.
//!
//! The format is built to survive faults: every file is written to a temp
//! name and atomically renamed (a torn write never corrupts an existing
//! checkpoint), the manifest is written *last* so it only ever names shards
//! that are fully on disk, and it records each shard's particle count and
//! CRC-64 so any torn, truncated or bit-flipped shard is detected at read
//! time with an error naming the exact file and field.

use crate::cluster::{Cluster, ClusterConfig};
use bonsai_core::snapshot::{snapshot_from_bytes, snapshot_to_bytes};
use bonsai_tree::Particles;
use bonsai_util::crc64;
use std::io;
use std::path::{Path, PathBuf};

const MANIFEST_HEADER: &str = "bonsai-checkpoint v2";

/// Everything a checkpoint restores.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// All particles, concatenated across shards.
    pub particles: Particles,
    /// Simulation time at the checkpoint.
    pub time: f64,
    /// Completed steps at the checkpoint.
    pub steps: u64,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn shard_name(rank: usize) -> String {
    format!("shard_{rank}.bin")
}

fn shard_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(shard_name(rank))
}

fn forces_name(rank: usize) -> String {
    format!("forces_{rank}.bin")
}

/// Serialize one rank's `(acc, pot)` as 32 bytes per particle (little
/// endian: acc.x, acc.y, acc.z, pot).
fn forces_to_bytes(acc: &[bonsai_util::Vec3], pot: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(acc.len() * 32);
    for (a, &phi) in acc.iter().zip(pot) {
        for v in [a.x, a.y, a.z, phi] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn forces_from_bytes(bytes: &[u8], count: usize) -> io::Result<(Vec<bonsai_util::Vec3>, Vec<f64>)> {
    if bytes.len() != count * 32 {
        return Err(bad(format!(
            "forces shard: {} bytes, expected {} for {count} particles",
            bytes.len(),
            count * 32
        )));
    }
    let f = |i: usize| f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
    let mut acc = Vec::with_capacity(count);
    let mut pot = Vec::with_capacity(count);
    for i in 0..count {
        acc.push(bonsai_util::Vec3::new(f(4 * i), f(4 * i + 1), f(4 * i + 2)));
        pot.push(f(4 * i + 3));
    }
    Ok((acc, pot))
}

/// Write `bytes` to `path` atomically (temp file + rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Write a per-rank sharded checkpoint under `dir`.
///
/// Layout: `dir/manifest.txt` + `dir/shard_<rank>.bin`. Shards land first,
/// the manifest last; each manifest shard line carries the particle count
/// and CRC-64 of the shard's bytes.
///
/// After the shard lines the manifest carries *exact-resume* state as
/// trailing `domain` / `weight` / `forces` lines (readers of the base
/// format stop after the shard lines, so the extension is backward
/// compatible). Force shards are written only when the cluster holds
/// accelerations for every rank — a pre-force initial checkpoint omits
/// them, and [`resume_cluster_exact`] reports that a rebalancing restart
/// via [`restore_cluster`] is needed instead.
pub fn write_checkpoint(cluster: &Cluster, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let p = cluster.rank_count();
    let mut manifest = format!(
        "{MANIFEST_HEADER}\nranks {p}\ntime {}\nsteps {}\n",
        cluster.time(),
        cluster.step_count()
    );
    for r in 0..p {
        let particles = cluster.rank_particles(r);
        let bytes = snapshot_to_bytes(particles, cluster.time());
        let crc = crc64(&bytes);
        write_atomic(&shard_path(dir, r), &bytes)?;
        manifest.push_str(&format!(
            "{} {} {crc:016x}\n",
            shard_name(r),
            particles.len()
        ));
    }
    for (r, d) in cluster.domains().iter().enumerate() {
        manifest.push_str(&format!("domain {r} {} {}\n", d.start, d.end));
    }
    for (r, w) in cluster.weights().iter().enumerate() {
        manifest.push_str(&format!("weight {r} {w:?}\n"));
    }
    let forces_ready = (0..p).all(|r| cluster.rank_acc(r).len() == cluster.rank_particles(r).len());
    if forces_ready {
        for r in 0..p {
            let bytes = forces_to_bytes(cluster.rank_acc(r), cluster.rank_pot(r));
            let crc = crc64(&bytes);
            write_atomic(&dir.join(forces_name(r)), &bytes)?;
            manifest.push_str(&format!("forces {r} {} {crc:016x}\n", forces_name(r)));
        }
    }
    write_atomic(&dir.join("manifest.txt"), manifest.as_bytes())
}

/// Parse one `key value` manifest line, reporting which field is missing or
/// malformed.
fn parse_field<T: std::str::FromStr>(line: Option<&str>, key: &str) -> io::Result<T> {
    let l = line.ok_or_else(|| bad(format!("manifest truncated: missing '{key}' line")))?;
    let v = l
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| bad(format!("manifest field '{key}': malformed line '{l}'")))?;
    v.trim()
        .parse()
        .map_err(|_| bad(format!("manifest field '{key}': invalid value '{v}'")))
}

/// Read and validate a sharded checkpoint.
///
/// Every shard's bytes are checked against the manifest's CRC-64 and
/// particle count before the snapshot itself is parsed (which re-validates
/// length and its own checksum), so torn or corrupted shards surface as
/// descriptive errors rather than bad particle data.
pub fn read_checkpoint_full(dir: &Path) -> io::Result<Checkpoint> {
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let mut lines = manifest.lines();
    let header = lines.next().unwrap_or("");
    if header != MANIFEST_HEADER {
        return Err(bad(format!(
            "bad manifest header '{header}' (expected '{MANIFEST_HEADER}')"
        )));
    }
    let ranks: usize = parse_field(lines.next(), "ranks")?;
    let time: f64 = parse_field(lines.next(), "time")?;
    let steps: u64 = parse_field(lines.next(), "steps")?;
    let mut all = Particles::new();
    for r in 0..ranks {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("manifest truncated: missing shard line {r}")))?;
        let mut parts = line.split_whitespace();
        let (name, count, crc_hex) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(n), Some(c), Some(x), None) => (n, c, x),
            _ => return Err(bad(format!("manifest shard line {r} malformed: '{line}'"))),
        };
        if name != shard_name(r) {
            return Err(bad(format!(
                "manifest shard line {r}: unexpected file '{name}' (expected '{}')",
                shard_name(r)
            )));
        }
        let count: usize = count
            .parse()
            .map_err(|_| bad(format!("shard {name}: invalid particle count '{count}'")))?;
        let stated = u64::from_str_radix(crc_hex, 16)
            .map_err(|_| bad(format!("shard {name}: invalid checksum '{crc_hex}'")))?;
        let bytes = std::fs::read(shard_path(dir, r))?;
        let actual = crc64(&bytes);
        if actual != stated {
            return Err(bad(format!(
                "shard {name}: checksum mismatch (manifest {stated:016x}, file {actual:016x}) — \
                 torn or corrupted write"
            )));
        }
        let (shard, _t) = snapshot_from_bytes(&bytes)
            .map_err(|e| bad(format!("shard {name}: {e}")))?;
        if shard.len() != count {
            return Err(bad(format!(
                "shard {name}: {} particles, manifest declares {count}",
                shard.len()
            )));
        }
        all.extend_from(&shard);
    }
    Ok(Checkpoint {
        particles: all,
        time,
        steps,
    })
}

/// Read a sharded checkpoint back into `(particles, time)`.
pub fn read_checkpoint(dir: &Path) -> io::Result<(Particles, f64)> {
    let ck = read_checkpoint_full(dir)?;
    Ok((ck.particles, ck.time))
}

/// Restore a cluster from a checkpoint with a (possibly different) rank
/// count.
pub fn restore_cluster(dir: &Path, ranks: usize, cfg: ClusterConfig) -> io::Result<Cluster> {
    let (particles, _time) = read_checkpoint(dir)?;
    Ok(Cluster::new(particles, ranks, cfg))
}

/// Resume a checkpoint into a membership view of a *different* world size
/// while preserving the simulation clock: the particle set is re-decomposed
/// over `ranks` ranks and `time`/`steps` continue from the manifest, so a
/// run checkpointed at R=4 carries straight on at R=6. (Contrast with
/// [`restore_cluster`], which resets the clock to zero, and with
/// [`resume_cluster_exact`], which requires the same rank count.)
pub fn resume_cluster_elastic(dir: &Path, ranks: usize, cfg: ClusterConfig) -> io::Result<Cluster> {
    let ck = read_checkpoint_full(dir)?;
    Ok(Cluster::from_redistributed(
        ck.particles,
        ranks,
        cfg,
        ck.time,
        ck.steps,
    ))
}

/// Resume a cluster *exactly* from a checkpoint: same rank count, same
/// per-rank particle assignment, and the checkpointed domains, load
/// weights, accelerations and potentials adopted verbatim. No fresh
/// decomposition or force phase runs, so every subsequent [`Cluster::step`]
/// is bit-for-bit identical to the run that wrote the checkpoint — the
/// property the force-accuracy conformance suite gates on (DESIGN.md §6f).
///
/// Requires the exact-resume manifest extension (`domain`/`weight`/`forces`
/// lines); checkpoints written before the first force evaluation lack the
/// force shards and are rejected with a descriptive error — restart those
/// through [`restore_cluster`], which rebalances from scratch.
pub fn resume_cluster_exact(dir: &Path, cfg: ClusterConfig) -> io::Result<Cluster> {
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let mut lines = manifest.lines();
    let header = lines.next().unwrap_or("");
    if header != MANIFEST_HEADER {
        return Err(bad(format!(
            "bad manifest header '{header}' (expected '{MANIFEST_HEADER}')"
        )));
    }
    let ranks: usize = parse_field(lines.next(), "ranks")?;
    let time: f64 = parse_field(lines.next(), "time")?;
    let steps: u64 = parse_field(lines.next(), "steps")?;

    // Per-rank particle shards (the base format, kept per rank this time).
    let mut parts: Vec<Particles> = Vec::with_capacity(ranks);
    for r in 0..ranks {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("manifest truncated: missing shard line {r}")))?;
        let mut f = line.split_whitespace();
        let (name, _count, crc_hex) = match (f.next(), f.next(), f.next()) {
            (Some(n), Some(c), Some(x)) => (n, c, x),
            _ => return Err(bad(format!("manifest shard line {r} malformed: '{line}'"))),
        };
        let stated = u64::from_str_radix(crc_hex, 16)
            .map_err(|_| bad(format!("shard {name}: invalid checksum '{crc_hex}'")))?;
        let bytes = std::fs::read(shard_path(dir, r))?;
        if crc64(&bytes) != stated {
            return Err(bad(format!("shard {name}: checksum mismatch")));
        }
        let (shard, _t) = snapshot_from_bytes(&bytes).map_err(|e| bad(format!("shard {name}: {e}")))?;
        parts.push(shard);
    }

    // Exact-resume extension lines.
    let mut domains = vec![None; ranks];
    let mut weights = vec![None; ranks];
    let mut forces: Vec<Option<(Vec<bonsai_util::Vec3>, Vec<f64>)>> =
        (0..ranks).map(|_| None).collect();
    for line in lines {
        let mut f = line.split_whitespace();
        match f.next() {
            Some("domain") => {
                let (r, start, end) = parse3(&mut f, line, "domain")?;
                let r = in_range(r as usize, ranks, line)?;
                domains[r] = Some(bonsai_sfc::KeyRange::new(start, end));
            }
            Some("weight") => {
                let r: usize = parse_tok(f.next(), line, "weight rank")?;
                let r = in_range(r, ranks, line)?;
                weights[r] = Some(parse_tok::<f64>(f.next(), line, "weight value")?);
            }
            Some("forces") => {
                let r: usize = parse_tok(f.next(), line, "forces rank")?;
                let r = in_range(r, ranks, line)?;
                let name: String = parse_tok(f.next(), line, "forces file")?;
                let crc_hex: String = parse_tok(f.next(), line, "forces checksum")?;
                let stated = u64::from_str_radix(&crc_hex, 16)
                    .map_err(|_| bad(format!("forces {name}: invalid checksum '{crc_hex}'")))?;
                let bytes = std::fs::read(dir.join(&name))?;
                if crc64(&bytes) != stated {
                    return Err(bad(format!(
                        "forces {name}: checksum mismatch — torn or corrupted write"
                    )));
                }
                forces[r] = Some(forces_from_bytes(&bytes, parts[r].len())?);
            }
            _ => {} // Unknown trailing lines: future extensions.
        }
    }
    let missing = |what: &str| {
        bad(format!(
            "checkpoint lacks exact-resume {what} lines (written before the first force \
             evaluation, or by an older version); use restore_cluster to restart with a \
             fresh decomposition"
        ))
    };
    let domains: Vec<_> = domains
        .into_iter()
        .collect::<Option<_>>()
        .ok_or_else(|| missing("domain"))?;
    let weights: Vec<_> = weights
        .into_iter()
        .collect::<Option<_>>()
        .ok_or_else(|| missing("weight"))?;
    let (acc, pot): (Vec<_>, Vec<_>) = forces
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| missing("forces"))?
        .into_iter()
        .unzip();
    Ok(Cluster::from_exact_state(
        parts, acc, pot, domains, weights, time, steps, cfg,
    ))
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, line: &str, what: &str) -> io::Result<T> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| bad(format!("manifest line '{line}': bad {what}")))
}

fn parse3<'a>(
    f: &mut impl Iterator<Item = &'a str>,
    line: &str,
    what: &str,
) -> io::Result<(u64, u64, u64)> {
    Ok((
        parse_tok(f.next(), line, what)?,
        parse_tok(f.next(), line, what)?,
        parse_tok(f.next(), line, what)?,
    ))
}

fn in_range(r: usize, ranks: usize, line: &str) -> io::Result<usize> {
    if r < ranks {
        Ok(r)
    } else {
        Err(bad(format!("manifest line '{line}': rank {r} out of range")))
    }
}

/// I/O-overhead model: the paper reports a "few percent" of step time for
/// snapshot writes. Given a snapshot cadence and per-rank data volume,
/// estimate the fractional overhead on a parallel filesystem with
/// `fs_bandwidth_per_node` bytes/s per node.
pub fn io_overhead_fraction(
    particles_per_rank: u64,
    step_seconds: f64,
    steps_per_snapshot: u64,
    fs_bandwidth_per_node: f64,
) -> f64 {
    let bytes = particles_per_rank as f64 * 64.0; // snapshot record size
    let write_time = bytes / fs_bandwidth_per_node;
    write_time / (step_seconds * steps_per_snapshot as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_ic::plummer_sphere;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("bonsai_ckpt").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_round_trip_preserves_everything() {
        let ic = plummer_sphere(1200, 1);
        let mut c = Cluster::new(ic, 4, ClusterConfig::default());
        c.step();
        c.step();
        let dir = tmp("round_trip");
        write_checkpoint(&c, &dir).unwrap();
        let ck = read_checkpoint_full(&dir).unwrap();
        assert_eq!(ck.particles.len(), 1200);
        assert!((ck.time - c.time()).abs() < 1e-15);
        assert_eq!(ck.steps, 2);
        let mut ids = ck.particles.id.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..1200).collect::<Vec<u64>>());
        assert!((ck.particles.total_mass() - 1.0).abs() < 1e-9);
        // Atomic writes leave no temp files behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "stray temp file {name:?}"
            );
        }
    }

    #[test]
    fn restart_with_different_rank_count() {
        let ic = plummer_sphere(800, 2);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        let dir = tmp("rescale");
        write_checkpoint(&c, &dir).unwrap();
        let c2 = restore_cluster(&dir, 7, ClusterConfig::default()).unwrap();
        assert_eq!(c2.rank_count(), 7);
        assert_eq!(c2.total_particles(), 800);
    }

    #[test]
    fn restart_trajectory_matches_uninterrupted_run() {
        // Physics must continue identically: compare particle positions of
        // (run 4 steps) vs (run 2, checkpoint, restore, run 2).
        let ic = plummer_sphere(600, 3);
        let cfg = ClusterConfig::default();
        let mut a = Cluster::new(ic.clone(), 4, cfg.clone());
        for _ in 0..4 {
            a.step();
        }

        let mut b = Cluster::new(ic, 4, cfg.clone());
        b.step();
        b.step();
        let dir = tmp("traj");
        write_checkpoint(&b, &dir).unwrap();
        let mut b2 = restore_cluster(&dir, 4, cfg).unwrap();
        b2.step();
        b2.step();

        // Compare by id. Restart re-runs the decomposition on the same
        // state; positions should agree to tight tolerance.
        let mut pa: Vec<(u64, bonsai_util::Vec3)> = {
            let g = a.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        let mut pb: Vec<(u64, bonsai_util::Vec3)> = {
            let g = b2.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        pa.sort_by_key(|(i, _)| *i);
        pb.sort_by_key(|(i, _)| *i);
        // The restored cluster re-decomposes from fresh load weights, so
        // force summation *order* differs at the 1e-15 level; two steps of
        // N-body dynamics amplify that slightly. Positions must still agree
        // to far better than any physical scale (softening is 1e-2).
        for ((ia, xa), (ib, xb)) in pa.iter().zip(&pb) {
            assert_eq!(ia, ib);
            assert!(
                (*xa - *xb).norm() < 1e-6,
                "id {ia} diverged after restart: {xa} vs {xb}"
            );
        }
    }

    #[test]
    fn exact_resume_restores_identical_state() {
        let ic = plummer_sphere(900, 8);
        let cfg = ClusterConfig::default();
        let mut c = Cluster::new(ic, 4, cfg.clone());
        c.step();
        c.step();
        let dir = tmp("exact");
        write_checkpoint(&c, &dir).unwrap();
        let r = resume_cluster_exact(&dir, cfg).unwrap();
        assert_eq!(r.rank_count(), 4);
        assert_eq!(r.step_count(), 2);
        assert_eq!(r.time().to_bits(), c.time().to_bits());
        assert_eq!(r.domains(), c.domains());
        // Per-rank state is adopted verbatim: same particles in the same
        // order, same accelerations to the bit.
        for rank in 0..4 {
            let (a, b) = (c.rank_particles(rank), r.rank_particles(rank));
            assert_eq!(a.id, b.id);
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.vel, b.vel);
        }
        let (ca, ra) = (c.accelerations_by_id(), r.accelerations_by_id());
        for (id, acc) in &ca {
            assert_eq!(acc, &ra[id], "acc of particle {id} not bit-identical");
        }
    }

    #[test]
    fn exact_resume_rejects_pre_force_checkpoints() {
        // The constructor writes an initial checkpoint before the first
        // force evaluation; it has no forces shards and must be refused
        // with a pointer at restore_cluster.
        let ic = plummer_sphere(300, 12);
        let dir = tmp("preforce");
        let _c = Cluster::with_faults(
            ic,
            2,
            ClusterConfig::default(),
            bonsai_net::FaultPlan::new(0),
            Some(crate::cluster::RecoveryConfig {
                dir: dir.clone(),
                every: 0,
            }),
        );
        let err = match resume_cluster_exact(&dir, ClusterConfig::default()) {
            Ok(_) => panic!("pre-force checkpoint must not resume exactly"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("restore_cluster"), "{err}");
    }

    #[test]
    fn exact_resume_detects_corrupt_forces_shard() {
        let ic = plummer_sphere(400, 13);
        let cfg = ClusterConfig::default();
        let mut c = Cluster::new(ic, 3, cfg.clone());
        c.step();
        let dir = tmp("forces_flip");
        write_checkpoint(&c, &dir).unwrap();
        let path = dir.join("forces_2.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        let err = match resume_cluster_exact(&dir, cfg) {
            Ok(_) => panic!("corrupt forces shard must not resume"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("forces_2.bin") && err.to_string().contains("checksum"),
            "{err}"
        );
    }

    #[test]
    fn corrupted_manifest_rejected() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "not a checkpoint").unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(err.to_string().contains("manifest header"), "{err}");
    }

    #[test]
    fn manifest_field_errors_name_the_field() {
        let dir = tmp("fields");
        std::fs::create_dir_all(&dir).unwrap();
        let cases = [
            ("bonsai-checkpoint v2\n", "ranks"),
            ("bonsai-checkpoint v2\nranks two\n", "ranks"),
            ("bonsai-checkpoint v2\nranks 1\ntime soon\n", "time"),
            ("bonsai-checkpoint v2\nranks 1\ntime 0.5\nsteps -3\n", "steps"),
        ];
        for (content, field) in cases {
            std::fs::write(dir.join("manifest.txt"), content).unwrap();
            let err = read_checkpoint(&dir).unwrap_err();
            assert!(
                err.to_string().contains(field),
                "manifest {content:?}: error '{err}' does not name '{field}'"
            );
        }
    }

    #[test]
    fn torn_shard_write_detected() {
        let ic = plummer_sphere(400, 5);
        let mut c = Cluster::new(ic, 3, ClusterConfig::default());
        c.step();
        let dir = tmp("torn");
        write_checkpoint(&c, &dir).unwrap();
        // Simulate a torn write: shard 1 loses its tail.
        let shard = dir.join("shard_1.bin");
        let bytes = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &bytes[..bytes.len() - 17]).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(
            err.to_string().contains("shard_1.bin") && err.to_string().contains("checksum"),
            "{err}"
        );
    }

    #[test]
    fn bit_flipped_shard_detected() {
        let ic = plummer_sphere(300, 6);
        let c = Cluster::new(ic, 2, ClusterConfig::default());
        let dir = tmp("flip");
        write_checkpoint(&c, &dir).unwrap();
        let shard = dir.join("shard_0.bin");
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&shard, bytes).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(err.to_string().contains("shard_0.bin"), "{err}");
    }

    #[test]
    fn io_overhead_is_few_percent_at_paper_scale() {
        // 13M particles/rank, 4.6 s steps, snapshot every 200 steps, ~1 GB/s
        // effective per-node share of the Lustre filesystem.
        let f = io_overhead_fraction(13_000_000, 4.6, 200, 1.0e9);
        assert!((0.0001..0.05).contains(&f), "I/O overhead fraction {f}");
    }
}
