//! Robustness and failure-injection tests for the distributed stack:
//! degenerate inputs (empty ranks, coincident particles), corrupted wire
//! payloads, and protocol violations must fail loudly or be absorbed
//! gracefully — never silently corrupt physics.

use bonsai_domain::LetTree;
use bonsai_ic::plummer_sphere;
use bonsai_net::{Fabric, MsgKind};
use bonsai_sim::{Cluster, ClusterConfig};
use bonsai_tree::Particles;
use bonsai_util::Vec3;
use bytes::Bytes;

#[test]
fn more_ranks_than_justified_by_particles() {
    // 60 particles over 12 ranks: several domains end up nearly or totally
    // empty after sampling. Everything must still work.
    let ic = plummer_sphere(60, 1);
    let mut c = Cluster::new(ic, 12, ClusterConfig::default());
    for _ in 0..3 {
        c.step();
    }
    assert_eq!(c.total_particles(), 60);
    let mut ids = c.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..60).collect::<Vec<u64>>());
}

#[test]
fn heavily_clustered_input_respects_cap_eventually() {
    // All particles initially in a corner blob: the first decomposition is
    // extreme, but the cap keeps the worst rank bounded.
    let mut ic = Particles::new();
    let mut rng = bonsai_util::rng::Xoshiro256::seed_from(2);
    for i in 0..4000 {
        let r = if i < 3800 { 0.05 } else { 3.0 };
        ic.push(rng.unit_sphere() * (r * rng.uniform()), Vec3::zero(), 1.0, i as u64);
    }
    let mut c = Cluster::new(ic, 8, ClusterConfig::default());
    c.step();
    let imb = c.last_measurements.imbalance;
    assert!(imb < 1.6, "imbalance {imb} after capped decomposition");
}

#[test]
fn coincident_particles_do_not_break_the_cluster() {
    let mut ic = plummer_sphere(1000, 3);
    // inject 40 exactly coincident particles (deeper than MAX_LEVEL can split)
    for i in 0..40 {
        ic.push(Vec3::splat(0.123), Vec3::zero(), 1e-3, 10_000 + i);
    }
    let mut c = Cluster::new(ic, 4, ClusterConfig::default());
    c.step();
    assert_eq!(c.total_particles(), 1040);
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite(), "coincident particles produced non-finite forces");
    }
}

#[test]
fn truncated_let_payload_is_rejected() {
    let ic = plummer_sphere(500, 4);
    let tree = bonsai_tree::build::Tree::build(ic, bonsai_tree::build::TreeParams::default());
    let lt = bonsai_domain::boundary_tree(&tree, &bonsai_sfc::KeyRange::everything());
    let bytes = lt.to_bytes();
    // Any truncation must be detected, not mis-parsed.
    for cut in [0usize, 1, 8, 15, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            LetTree::from_bytes(&bytes[..cut]).is_none(),
            "truncation at {cut} bytes went unnoticed"
        );
    }
}

#[test]
fn corrupted_node_kind_is_rejected() {
    let ic = plummer_sphere(200, 5);
    let tree = bonsai_tree::build::Tree::build(ic, bonsai_tree::build::TreeParams::default());
    let lt = bonsai_domain::boundary_tree(&tree, &bonsai_sfc::KeyRange::everything());
    let mut bytes = lt.to_bytes().to_vec();
    // Find the first node's kind byte and clobber it with an invalid tag.
    // Node layout: 16-byte header + node, kind at offset 16 + 160 + 8.
    let kind_offset = 16 + 160 + 8;
    bytes[kind_offset] = 0xFF;
    assert!(LetTree::from_bytes(&bytes).is_none(), "bad node kind accepted");
}

#[test]
#[should_panic(expected = "protocol violation")]
fn fabric_rejects_out_of_phase_messages() {
    let mut eps = Fabric::new(2);
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    // B sends a LET while A expects boundary contributions.
    b.send(0, MsgKind::Let, Bytes::from_static(b"sneaky"));
    let _ = a.allgather(MsgKind::Boundary, Bytes::from_static(b"mine"));
}

#[test]
fn single_particle_per_rank_extreme() {
    let ic = plummer_sphere(6, 6);
    let mut c = Cluster::new(ic, 6, ClusterConfig::default());
    let b = c.step();
    assert_eq!(c.total_particles(), 6);
    assert!(b.total() >= 0.0);
}

#[test]
fn zero_velocity_cold_collapse_survives_many_steps() {
    // Cold collapse: the most violent load-rebalancing scenario (everything
    // falls to the centre and re-expands).
    let mut ic = plummer_sphere(1500, 7);
    for v in &mut ic.vel {
        *v = Vec3::zero();
    }
    let mut cfg = ClusterConfig::default();
    cfg.dt = 0.005;
    cfg.eps = 0.05;
    let mut c = Cluster::new(ic, 5, cfg);
    for _ in 0..30 {
        c.step();
    }
    assert_eq!(c.total_particles(), 1500);
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite());
    }
}
