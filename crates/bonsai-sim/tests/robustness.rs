//! Robustness and failure-injection tests for the distributed stack:
//! degenerate inputs (empty ranks, coincident particles), corrupted wire
//! payloads, and protocol violations must fail loudly or be absorbed
//! gracefully — never silently corrupt physics.

use bonsai_domain::LetTree;
use bonsai_ic::plummer_sphere;
use bonsai_net::{Fabric, FaultKind, FaultPlan, Injection, MsgKind, RecoveryAction};
use bonsai_sim::{Cluster, ClusterConfig, RecoveryConfig};
use bonsai_tree::Particles;
use bonsai_util::Vec3;
use bonsai_verify::{acceleration_diff, equivalence_band, serial_reference};
use bytes::Bytes;

#[test]
fn more_ranks_than_justified_by_particles() {
    // 60 particles over 12 ranks: several domains end up nearly or totally
    // empty after sampling. Everything must still work.
    let ic = plummer_sphere(60, 1);
    let mut c = Cluster::new(ic, 12, ClusterConfig::default());
    for _ in 0..3 {
        c.step();
    }
    assert_eq!(c.total_particles(), 60);
    let mut ids = c.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..60).collect::<Vec<u64>>());
}

#[test]
fn heavily_clustered_input_respects_cap_eventually() {
    // All particles initially in a corner blob: the first decomposition is
    // extreme, but the cap keeps the worst rank bounded.
    let mut ic = Particles::new();
    let mut rng = bonsai_util::rng::Xoshiro256::seed_from(2);
    for i in 0..4000 {
        let r = if i < 3800 { 0.05 } else { 3.0 };
        ic.push(rng.unit_sphere() * (r * rng.uniform()), Vec3::zero(), 1.0, i as u64);
    }
    let mut c = Cluster::new(ic, 8, ClusterConfig::default());
    c.step();
    let imb = c.last_measurements.imbalance;
    assert!(imb < 1.6, "imbalance {imb} after capped decomposition");
}

#[test]
fn coincident_particles_do_not_break_the_cluster() {
    let mut ic = plummer_sphere(1000, 3);
    // inject 40 exactly coincident particles (deeper than MAX_LEVEL can split)
    for i in 0..40 {
        ic.push(Vec3::splat(0.123), Vec3::zero(), 1e-3, 10_000 + i);
    }
    let mut c = Cluster::new(ic, 4, ClusterConfig::default());
    c.step();
    assert_eq!(c.total_particles(), 1040);
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite(), "coincident particles produced non-finite forces");
    }
}

#[test]
fn truncated_let_payload_is_rejected() {
    let ic = plummer_sphere(500, 4);
    let tree = bonsai_tree::build::Tree::build(ic, bonsai_tree::build::TreeParams::default());
    let lt = bonsai_domain::boundary_tree(&tree, &bonsai_sfc::KeyRange::everything());
    let bytes = lt.to_bytes();
    // Any truncation must be detected, not mis-parsed.
    for cut in [0usize, 1, 8, 15, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            LetTree::from_bytes(&bytes[..cut]).is_none(),
            "truncation at {cut} bytes went unnoticed"
        );
    }
}

#[test]
fn corrupted_node_kind_is_rejected() {
    let ic = plummer_sphere(200, 5);
    let tree = bonsai_tree::build::Tree::build(ic, bonsai_tree::build::TreeParams::default());
    let lt = bonsai_domain::boundary_tree(&tree, &bonsai_sfc::KeyRange::everything());
    let mut bytes = lt.to_bytes().to_vec();
    // Find the first node's kind byte and clobber it with an invalid tag.
    // Node layout: 16-byte header + node, kind at offset 16 + 160 + 8.
    let kind_offset = 16 + 160 + 8;
    bytes[kind_offset] = 0xFF;
    assert!(LetTree::from_bytes(&bytes).is_none(), "bad node kind accepted");
}

#[test]
fn fabric_defers_out_of_phase_messages() {
    // Ranks are not barrier-synchronized: a fast peer's LET can land while
    // this rank is still collecting boundaries. The fabric must defer it —
    // losing it would deadlock the receiver's LET phase.
    let mut eps = Fabric::new(2);
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    b.send(0, MsgKind::Let, Bytes::from_static(b"early"));
    b.send(0, MsgKind::Boundary, Bytes::from_static(b"bnd"));
    let all = a.allgather(MsgKind::Boundary, Bytes::from_static(b"mine"));
    assert_eq!(&all[1][..], b"bnd");
    let lets = a.recv_n_of(MsgKind::Let, 1);
    assert_eq!((lets[0].0, &lets[0].1[..]), (1, &b"early"[..]));
}

#[test]
fn single_particle_per_rank_extreme() {
    let ic = plummer_sphere(6, 6);
    let mut c = Cluster::new(ic, 6, ClusterConfig::default());
    let b = c.step();
    assert_eq!(c.total_particles(), 6);
    assert!(b.total() >= 0.0);
}

/// A fresh, unique checkpoint directory for a chaos run.
fn chaos_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bonsai_chaos_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full chaos plan: background fault rates on every message-level kind,
/// one forced injection of each kind (all from rank 0, so guaranteed to hit
/// real traffic), a stalled rank and a hard crash.
fn chaos_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for kind in FaultKind::MESSAGE_KINDS {
        plan = plan.with_rate(kind, 0.02);
    }
    for (i, kind) in FaultKind::MESSAGE_KINDS.into_iter().enumerate() {
        plan = plan.with_injection(Injection {
            epoch: 2 + i as u64,
            from: Some(0),
            to: None,
            kind: None,
            fault: kind,
        });
    }
    plan.with_stall(1, 8).with_stall(1, 9).with_crash(2, 12)
}

#[test]
fn chaos_soak_every_fault_kind_recovered() {
    // 20 steps under a plan that injects at least one fault of every kind,
    // including a mid-run rank crash recovered from checkpoint. Physics
    // must come out whole: no lost particles, finite forces, bounded
    // energy drift.
    let dir = chaos_dir("soak");
    let ic = plummer_sphere(3000, 17);
    let mut c = Cluster::with_faults(
        ic,
        6,
        ClusterConfig::default(),
        chaos_plan(2024),
        Some(RecoveryConfig { dir, every: 2 }),
    );
    let e0 = c.energy_report().total();
    for _ in 0..20 {
        c.step();
    }

    // Conservation: every particle survived the crash + rollback.
    assert_eq!(c.total_particles(), 3000);
    let mut ids = c.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..3000).collect::<Vec<u64>>());
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite(), "chaos run produced non-finite forces");
    }
    let drift = ((c.energy_report().total() - e0) / e0).abs();
    assert!(drift < 0.05, "energy drift {drift} under faults");

    // Every fault kind was actually exercised …
    let log = c.fault_log();
    for kind in FaultKind::MESSAGE_KINDS {
        assert!(log.injected_of(kind) >= 1, "no {kind} fault injected");
    }
    assert!(log.injected_of(FaultKind::Stall) >= 1, "no stall injected");
    assert!(log.injected_of(FaultKind::Crash) >= 1, "no crash injected");
    // … and every one was detected and handled.
    assert!(log.recoveries_of(RecoveryAction::Retransmit) >= 1);
    assert!(log.recoveries_of(RecoveryAction::DeclareDead) >= 1);
    assert!(log.recoveries_of(RecoveryAction::RestoreCheckpoint) >= 1);
    assert!(!log.render().is_empty());

    // Flow-ledger conservation: even with every fault kind firing, each
    // sealed envelope must reach exactly one terminal outcome — nothing
    // pending, nothing double-counted, nothing vanished.
    let k = c.flow_conservation();
    assert!(
        k.holds(),
        "flow ledger does not conserve under chaos: {} sealed vs {} delivered \
         + {} fallback + {} dead (+{} pending)",
        k.sealed,
        k.delivered,
        k.fallback,
        k.dead,
        k.pending
    );
    assert!(k.fallback + k.dead >= 1, "chaos plan terminated no flow abnormally");
    let retx: u32 = c
        .flow_ledger()
        .records()
        .iter()
        .map(|r| r.attempts.saturating_sub(1))
        .sum();
    assert!(retx >= 1, "chaos soak recorded no retransmission in the ledger");
}

#[test]
fn chaos_identical_seed_identical_log() {
    // Fault injection is a pure function of (seed, message coordinates):
    // the same plan must produce bit-identical fault logs and trajectories.
    let run = |tag: &str| {
        let dir = chaos_dir(tag);
        let mut c = Cluster::with_faults(
            plummer_sphere(1500, 23),
            4,
            ClusterConfig::default(),
            FaultPlan::new(77)
                .with_rate(FaultKind::Drop, 0.05)
                .with_rate(FaultKind::Corrupt, 0.05)
                .with_crash(1, 6),
            Some(RecoveryConfig { dir, every: 2 }),
        );
        for _ in 0..10 {
            c.step();
        }
        (c.fault_log(), c.flow_ledger(), c.gather())
    };
    let (log_a, flows_a, pa) = run("det_a");
    let (log_b, flows_b, pb) = run("det_b");
    assert!(!log_a.is_clean(), "plan injected nothing");
    assert_eq!(log_a, log_b, "same seed produced different fault logs");
    // The flow ledger is part of the deterministic surface too: same seed,
    // same envelope lifecycles (ids, attempts, injected faults, outcomes).
    assert!(!flows_a.records().is_empty(), "run sealed no flows");
    assert_eq!(
        flows_a.records(),
        flows_b.records(),
        "same seed produced different flow ledgers"
    );

    let sorted = |p: &Particles| {
        let mut v: Vec<(u64, Vec3)> = p.id.iter().copied().zip(p.pos.iter().copied()).collect();
        v.sort_by_key(|&(id, _)| id);
        v
    };
    assert_eq!(sorted(&pa), sorted(&pb), "same seed diverged");
}

#[test]
fn chaos_crash_without_recovery_config_panics_loudly() {
    let plan = FaultPlan::new(5).with_crash(1, 3);
    let result = std::panic::catch_unwind(|| {
        let mut c = Cluster::with_faults(
            plummer_sphere(600, 29),
            3,
            ClusterConfig::default(),
            plan,
            None,
        );
        for _ in 0..5 {
            c.step();
        }
    });
    let err = result.expect_err("crash with no checkpoint must not pass silently");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("no recovery checkpoint"), "panic message: {msg}");
}

#[test]
fn simultaneous_crashes_in_one_epoch_recover_in_one_pass() {
    // Two ranks scheduled to die in the *same* epoch: detection must treat
    // them as one casualty set — a single rollback, not a chain of partial
    // recoveries that could observe a half-dead world.
    let dir = chaos_dir("double_crash");
    let plan = FaultPlan::new(13).with_crash(1, 5).with_crash(3, 5);
    let mut c = Cluster::with_faults(
        plummer_sphere(2000, 19),
        5,
        ClusterConfig::default(),
        plan,
        Some(RecoveryConfig { dir, every: 1 }),
    );
    for _ in 0..8 {
        c.step();
    }
    assert_eq!(c.rank_count(), 5, "fixed-world recovery resized the world");
    assert_eq!(c.total_particles(), 2000);
    let mut ids = c.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..2000).collect::<Vec<u64>>());
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite());
    }
    let log = c.fault_log();
    assert_eq!(
        log.injected_of(FaultKind::Crash),
        2,
        "both scheduled crashes must fire"
    );
    assert!(log.recoveries_of(RecoveryAction::RestoreCheckpoint) >= 1);
}

#[test]
fn simultaneous_crashes_with_elastic_recovery_drop_both_from_view() {
    // The elastic variant of the same-epoch double crash: one death-gossip
    // round agrees both nodes out, and the world shrinks by two at once.
    let dir = chaos_dir("double_crash_elastic");
    let plan = FaultPlan::new(13).with_crash(1, 5).with_crash(3, 5);
    let mut c = Cluster::with_faults(
        plummer_sphere(2000, 19),
        5,
        ClusterConfig::default(),
        plan,
        Some(RecoveryConfig { dir, every: 1 }),
    );
    c.enable_elastic_recovery();
    for _ in 0..8 {
        c.step();
    }
    assert_eq!(c.rank_count(), 3, "both dead ranks must leave the world");
    assert_eq!(c.view().world(), 3);
    assert!(!c.view().contains(1) && !c.view().contains(3));
    assert_eq!(c.total_particles(), 2000);
    let mut ids = c.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..2000).collect::<Vec<u64>>());
    let ch = c.membership_log().changes().last().expect("deaths logged");
    assert_eq!((ch.from_world, ch.to_world), (5, 3));
}

#[test]
fn checkpoint_resumes_across_changed_world_size() {
    // A manifest written at R = 4 resumed at R = 6: the population is
    // re-decomposed over the new world, the simulation clock carries over,
    // and the resumed force field matches the serial oracle.
    let ic = plummer_sphere(1600, 47);
    let cfg = ClusterConfig::default();
    let mut a = Cluster::new(ic, 4, cfg.clone());
    for _ in 0..3 {
        a.step();
    }
    let dir = chaos_dir("elastic_resume");
    bonsai_sim::checkpoint::write_checkpoint(&a, &dir).unwrap();

    let b = bonsai_sim::checkpoint::resume_cluster_elastic(&dir, 6, cfg.clone()).unwrap();
    assert_eq!(b.rank_count(), 6);
    assert_eq!(b.step_count(), a.step_count(), "resume reset the step count");
    assert_eq!(b.time().to_bits(), a.time().to_bits(), "resume reset the clock");
    assert_eq!(b.total_particles(), 1600);
    let mut ids = b.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..1600).collect::<Vec<u64>>());

    let reference = serial_reference(&b.gather(), &cfg);
    let diff = acceleration_diff(&b.accelerations_by_id(), &reference);
    let band = equivalence_band(cfg.theta, 6);
    assert!(
        band.violation(&diff).is_none(),
        "resumed forces {diff:?} outside {band:?}"
    );

    // The widened world keeps stepping and keeps every particle.
    let mut b = b;
    b.step();
    assert_eq!(b.total_particles(), 1600);
}

#[test]
fn zero_velocity_cold_collapse_survives_many_steps() {
    // Cold collapse: the most violent load-rebalancing scenario (everything
    // falls to the centre and re-expands).
    let mut ic = plummer_sphere(1500, 7);
    for v in &mut ic.vel {
        *v = Vec3::zero();
    }
    let mut cfg = ClusterConfig::default();
    cfg.dt = 0.005;
    cfg.eps = 0.05;
    let mut c = Cluster::new(ic, 5, cfg);
    for _ in 0..30 {
        c.step();
    }
    assert_eq!(c.total_particles(), 1500);
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite());
    }
}

#[test]
fn exact_resume_trajectory_is_bit_identical() {
    // The conformance-suite contract (DESIGN.md §6f): restoring from an
    // exact-resume v2 checkpoint mid-run and stepping on must reproduce the
    // uninterrupted run's accelerations and positions to the bit — not
    // within a tolerance. (Contrast with restore_cluster, which rebalances
    // from scratch and only agrees to ~1e-6 after a few steps.)
    let ic = plummer_sphere(800, 11);
    let cfg = ClusterConfig::default();
    let mut a = Cluster::new(ic.clone(), 4, cfg.clone());
    a.step();
    a.step();

    let dir = std::env::temp_dir().join("bonsai_robust").join("exact_resume");
    let _ = std::fs::remove_dir_all(&dir);
    bonsai_sim::checkpoint::write_checkpoint(&a, &dir).unwrap();
    let mut b = bonsai_sim::checkpoint::resume_cluster_exact(&dir, cfg).unwrap();

    for step in 0..3 {
        a.step();
        b.step();
        let (fa, fb) = (a.accelerations_by_id(), b.accelerations_by_id());
        assert_eq!(fa.len(), fb.len());
        for (id, acc) in &fa {
            assert_eq!(
                acc, &fb[id],
                "step {step}: acceleration of particle {id} diverged after exact resume"
            );
        }
    }
    assert_eq!(a.time().to_bits(), b.time().to_bits());
    assert_eq!(a.step_count(), b.step_count());
    let mut pa: Vec<(u64, Vec3)> = {
        let g = a.gather();
        g.id.iter().copied().zip(g.pos.iter().copied()).collect()
    };
    let mut pb: Vec<(u64, Vec3)> = {
        let g = b.gather();
        g.id.iter().copied().zip(g.pos.iter().copied()).collect()
    };
    pa.sort_by_key(|(i, _)| *i);
    pb.sort_by_key(|(i, _)| *i);
    assert_eq!(pa, pb, "positions diverged after exact resume");
}
