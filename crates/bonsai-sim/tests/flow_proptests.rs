//! Property-based chaos for the flow ledger: for an *arbitrary* fault plan
//! — background rates on every message kind, a stall, a forced injection
//! and (sometimes) a mid-run crash recovered from checkpoint — every sealed
//! envelope must still reach exactly one terminal outcome, and the physics
//! must come out whole.

use bonsai_ic::plummer_sphere;
use bonsai_net::{FaultKind, FaultPlan, FlowOutcome, Injection};
use bonsai_sim::{Cluster, ClusterConfig, RecoveryConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn flow_ledger_conserves_under_arbitrary_fault_plans(
        seed in any::<u64>(),
        ranks in 2usize..5,
        steps in 3usize..7,
        rate_bits in any::<u64>(),
        stall_rank in 0usize..8,
        stall_epoch in 2u64..8,
        inj_kind in 0usize..6,
        inj_epoch in 2u64..8,
        crash in any::<bool>(),
        crash_epoch in 3u64..8,
    ) {
        let mut plan = FaultPlan::new(seed);
        for (i, kind) in FaultKind::MESSAGE_KINDS.into_iter().enumerate() {
            // Per-kind background rate in [0, 0.06), carved from seed bits.
            let rate = ((rate_bits >> (8 * i)) & 0xFF) as f64 / 255.0 * 0.06;
            plan = plan.with_rate(kind, rate);
        }
        plan = plan.with_stall(stall_rank % ranks, stall_epoch);
        plan = plan.with_injection(Injection {
            epoch: inj_epoch,
            from: Some(0),
            to: None,
            kind: None,
            fault: FaultKind::MESSAGE_KINDS[inj_kind],
        });
        if crash && ranks > 1 {
            plan = plan.with_crash(1 + (seed as usize) % (ranks - 1), crash_epoch);
        }

        // A checkpoint is always configured so even a declared-dead rank
        // recovers; the ledger must conserve across the rollback too.
        let dir = std::env::temp_dir().join(format!("bonsai_flow_prop_{seed:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let n = 240;
        let mut c = Cluster::with_faults(
            plummer_sphere(n, seed ^ 0x5EED),
            ranks,
            ClusterConfig::default(),
            plan,
            Some(RecoveryConfig { dir: dir.clone(), every: 2 }),
        );
        for _ in 0..steps {
            c.step();
        }

        let k = c.flow_conservation();
        prop_assert!(
            k.holds(),
            "ledger does not conserve: {} sealed vs {} delivered + {} fallback \
             + {} dead (+{} pending)",
            k.sealed, k.delivered, k.fallback, k.dead, k.pending
        );
        prop_assert!(k.sealed > 0, "run sealed no flows");

        // Per-record sanity: ids dense and 1-based, at least one attempt,
        // no flow left pending after the run.
        let ledger = c.flow_ledger();
        for (i, r) in ledger.records().iter().enumerate() {
            prop_assert_eq!(r.id, i as u64 + 1, "flow ids must be dense");
            prop_assert!(r.attempts >= 1);
            prop_assert!(
                !matches!(r.outcome, FlowOutcome::Pending),
                "flow {} still pending after the run", r.id
            );
        }

        // The chaos did not corrupt the physics.
        prop_assert_eq!(c.total_particles(), n);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
