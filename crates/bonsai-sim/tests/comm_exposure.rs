//! Regression tests for communication exposure under comm-heavy configs.
//!
//! At the default config (fast interconnect, ample per-rank work) the LET
//! exchange hides completely behind gravity and `hidden_comm_fraction`
//! legitimately reads 1.0 with `non_hidden_comm == 0`. Those readings are
//! degenerate as *test signals*: they would stay pinned even if the overlap
//! accounting broke. These tests starve the overlap window instead — a
//! crawling interconnect and little per-rank work — so the fraction must
//! land strictly inside (0, 1) and the breakdown must charge a nonzero
//! exposed-communication term.

use bonsai_ic::plummer_sphere;
use bonsai_net::{MachineSpec, Topology};
use bonsai_sim::trace::step_timelines;
use bonsai_sim::{Cluster, ClusterConfig};

/// A deliberately terrible interconnect: Piz Daint's shape with ~1000×
/// less injection bandwidth, so LET windows dwarf the gravity they
/// overlap with.
fn dialup_machine() -> MachineSpec {
    MachineSpec {
        name: "dialup",
        total_nodes: 64,
        nodes_used: 64,
        cpu: "Xeon E5-2670",
        cpu_cores: 8,
        node_ram_gb: 32,
        cpu_let_rate: 1.0,
        topology: Topology::Dragonfly,
        injection_gbs: 0.01,
        latency_us: 50.0,
    }
}

fn comm_heavy_cluster() -> Cluster {
    let mut cfg = ClusterConfig::default();
    cfg.machine = dialup_machine();
    // Small N per rank: little gravity to hide behind.
    Cluster::new(plummer_sphere(1600, 21), 4, cfg)
}

#[test]
fn hidden_fraction_is_strictly_interior_when_comm_heavy() {
    let mut c = comm_heavy_cluster();
    c.step();
    let tls = step_timelines(&c);
    assert_eq!(tls.len(), 4);
    for (r, tl) in tls.iter().enumerate() {
        let f = tl.hidden_comm_fraction();
        assert!(
            f > 0.0 && f < 1.0,
            "rank {r}: comm-heavy fraction must be strictly in (0,1), got {f}"
        );
    }
}

#[test]
fn breakdown_charges_exposed_comm_when_comm_heavy() {
    let mut c = comm_heavy_cluster();
    let b = c.step();
    assert!(
        b.non_hidden_comm > 0.0,
        "slow network must leave exposed communication, got {}",
        b.non_hidden_comm
    );
    // The exposure can't exceed the full exchange window: sanity-bound it
    // by the total step time.
    assert!(b.non_hidden_comm < b.total());
}

#[test]
fn default_config_still_hides_comm_completely() {
    // The paper's overlap claim at the default config stays intact: this is
    // the contrast that makes the comm-heavy readings meaningful.
    let mut c = Cluster::new(plummer_sphere(8000, 21), 4, ClusterConfig::default());
    let b = c.step();
    assert_eq!(b.non_hidden_comm, 0.0);
    for tl in step_timelines(&c) {
        assert!(tl.hidden_comm_fraction() > 0.9);
    }
}
