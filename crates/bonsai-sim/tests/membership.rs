//! Elastic-membership integration tests: online grow/shrink under churn and
//! message faults, elastic crash recovery, and health-driven autoscaling.
//! The contract throughout is the one the CI membership gate enforces — a
//! view change moves *observation* (rank assignment, domains, forces), never
//! physics: no particle is lost, the clock is untouched, and the post-change
//! force field matches the serial oracle at the cluster's own positions.

use bonsai_ic::plummer_sphere;
use bonsai_net::{FaultKind, FaultPlan, RecoveryAction};
use bonsai_obs::health::{Condition, Rule, Severity};
use bonsai_sim::{AutoscaleConfig, Cluster, ClusterConfig, LongRunConfig, RecoveryConfig};
use bonsai_verify::{acceleration_diff, equivalence_band, serial_reference};

/// A fresh, unique checkpoint directory for an elastic run.
fn elastic_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bonsai_elastic_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sorted particle ids — the conservation invariant.
fn sorted_ids(c: &Cluster) -> Vec<u64> {
    let mut ids = c.gather().id;
    ids.sort_unstable();
    ids
}

/// Assert the cluster's current force field sits inside the distributed
/// equivalence band against a serial walk over the *same* positions.
fn assert_matches_serial_oracle(c: &Cluster, cfg: &ClusterConfig, what: &str) {
    let reference = serial_reference(&c.gather(), cfg);
    let diff = acceleration_diff(&c.accelerations_by_id(), &reference);
    let band = equivalence_band(cfg.theta, c.rank_count());
    assert!(
        band.violation(&diff).is_none(),
        "{what}: {diff:?} outside {band:?}"
    );
}

#[test]
fn grow_online_preserves_population_and_clock() {
    let cfg = ClusterConfig::default();
    let mut c = Cluster::new(plummer_sphere(1200, 31), 3, cfg.clone());
    c.step();
    c.step();
    let (t, s) = (c.time(), c.step_count());

    c.admit_ranks(2);

    assert_eq!(c.rank_count(), 5);
    assert_eq!(c.view().world(), 5);
    assert_eq!(c.total_particles(), 1200, "growth lost particles");
    assert_eq!(c.time(), t, "view change must not advance the clock");
    assert_eq!(c.step_count(), s);
    let ch = c.membership_log().changes().last().expect("change logged");
    assert_eq!((ch.from_world, ch.to_world), (3, 5));
    assert!(
        ch.migrated_particles > 0,
        "joiners received no particles: the re-split did nothing"
    );
    assert_matches_serial_oracle(&c, &cfg, "post-growth forces");

    // The grown world keeps stepping and keeps every particle.
    c.step();
    c.step();
    assert_eq!(sorted_ids(&c), (0..1200).collect::<Vec<u64>>());
}

#[test]
fn shrink_online_ships_departures_to_survivors() {
    let cfg = ClusterConfig::default();
    let mut c = Cluster::new(plummer_sphere(1500, 37), 6, cfg.clone());
    c.step();

    c.retire_ranks(2);

    assert_eq!(c.rank_count(), 4);
    assert_eq!(c.view().world(), 4);
    assert_eq!(c.total_particles(), 1500, "retirement lost particles");
    let ch = c.membership_log().changes().last().expect("change logged");
    assert_eq!((ch.from_world, ch.to_world), (6, 4));
    assert!(
        ch.migrated_particles > 0,
        "departing ranks shipped nothing yet the population is intact?"
    );
    assert_matches_serial_oracle(&c, &cfg, "post-shrink forces");

    c.step();
    c.step();
    assert_eq!(sorted_ids(&c), (0..1500).collect::<Vec<u64>>());
}

#[test]
fn membership_chaos_soak_with_churn_keeps_physics_whole() {
    // The tentpole gate: grow/shrink churn every few steps while the fabric
    // drops, duplicates and corrupts messages. Afterwards the population,
    // the energy budget and the force field must all come out whole.
    let dir = elastic_dir("soak");
    let cfg = ClusterConfig::default();
    let plan = FaultPlan::new(4242)
        .with_rate(FaultKind::Drop, 0.02)
        .with_rate(FaultKind::Duplicate, 0.02)
        .with_rate(FaultKind::Corrupt, 0.02);
    let mut c = Cluster::with_faults(
        plummer_sphere(2400, 41),
        4,
        cfg.clone(),
        plan,
        Some(RecoveryConfig { dir, every: 2 }),
    );
    let e0 = c.energy_report().total();

    for step in 0..18 {
        c.step();
        match step {
            2 => c.admit_ranks(2),  // 4 -> 6
            5 => c.retire_ranks(1), // 6 -> 5
            8 => c.admit_ranks(1),  // 5 -> 6
            11 => c.retire_ranks(2), // 6 -> 4
            14 => c.admit_ranks(2), // 4 -> 6
            _ => {}
        }
    }

    assert_eq!(c.rank_count(), 6);
    assert_eq!(c.total_particles(), 2400, "churn under faults lost particles");
    assert_eq!(sorted_ids(&c), (0..2400).collect::<Vec<u64>>());
    for a in c.accelerations_by_id().values() {
        assert!(a.is_finite(), "churn produced non-finite forces");
    }
    let drift = ((c.energy_report().total() - e0) / e0).abs();
    assert!(drift < 0.05, "energy drift {drift} across elastic churn");

    // Every scripted change was agreed and audited.
    assert_eq!(c.membership_log().changes().len(), 5);
    assert!(c.fault_log().recoveries_of(RecoveryAction::ViewChange) >= 5);
    assert!(
        !c.fault_log().is_clean(),
        "the plan injected nothing — the soak proved nothing"
    );
    // View numbers are strictly increasing (self-stabilizing assignment).
    let numbers: Vec<u64> = c
        .membership_log()
        .changes()
        .iter()
        .map(|ch| ch.to_view)
        .collect();
    assert!(numbers.windows(2).all(|w| w[0] < w[1]), "{numbers:?}");

    assert_matches_serial_oracle(&c, &cfg, "post-soak forces");
}

#[test]
fn membership_churn_is_deterministic() {
    // Same seed, same churn script: bit-identical fault logs, membership
    // logs and trajectories — the elastic layer must not introduce any
    // nondeterminism (this is what makes BENCH_membership.json comparable
    // byte-for-byte across runs).
    let run = |tag: &str| {
        let dir = elastic_dir(tag);
        let plan = FaultPlan::new(99).with_rate(FaultKind::Drop, 0.03);
        let mut c = Cluster::with_faults(
            plummer_sphere(900, 43),
            3,
            ClusterConfig::default(),
            plan,
            Some(RecoveryConfig { dir, every: 2 }),
        );
        for step in 0..8 {
            c.step();
            if step == 2 {
                c.admit_ranks(1);
            }
            if step == 5 {
                c.retire_ranks(1);
            }
        }
        let mut pos: Vec<(u64, bonsai_util::Vec3)> = {
            let g = c.gather();
            g.id.iter().copied().zip(g.pos.iter().copied()).collect()
        };
        pos.sort_by_key(|&(id, _)| id);
        (c.fault_log(), c.membership_log().render(), pos)
    };
    let (fa, ma, pa) = run("det_a");
    let (fb, mb, pb) = run("det_b");
    assert_eq!(fa, fb, "fault logs diverged");
    assert_eq!(ma, mb, "membership logs diverged");
    assert_eq!(pa, pb, "trajectories diverged");
}

#[test]
fn elastic_crash_recovery_shrinks_the_world() {
    // With elastic recovery enabled, a dead rank is gossiped out of the
    // view and the checkpoint re-decomposed over the survivors — the world
    // gets smaller instead of resurrecting the crashed rank.
    let dir = elastic_dir("crash");
    let plan = FaultPlan::new(7).with_crash(2, 6);
    let mut c = Cluster::with_faults(
        plummer_sphere(1500, 51),
        5,
        ClusterConfig::default(),
        plan,
        Some(RecoveryConfig { dir, every: 1 }),
    );
    c.enable_elastic_recovery();
    for _ in 0..8 {
        c.step();
    }

    assert_eq!(c.rank_count(), 4, "dead rank was resurrected");
    assert_eq!(c.view().world(), 4);
    assert!(!c.view().contains(2), "dead node still in the view");
    assert_eq!(c.total_particles(), 1500, "elastic recovery lost particles");
    assert_eq!(sorted_ids(&c), (0..1500).collect::<Vec<u64>>());

    let ch = c.membership_log().changes().last().expect("death logged");
    assert_eq!((ch.from_world, ch.to_world), (5, 4));
    let log = c.fault_log();
    assert!(log.injected_of(FaultKind::Crash) >= 1);
    assert!(log.recoveries_of(RecoveryAction::DeclareDead) >= 1);
    assert!(log.recoveries_of(RecoveryAction::RestoreCheckpoint) >= 1);
    assert!(log.recoveries_of(RecoveryAction::ViewChange) >= 1);
}

#[test]
fn fixed_world_recovery_still_works_when_elastic_is_off() {
    // Regression guard: the elastic field must not change the default
    // crash-recovery semantics (world size stays fixed).
    let dir = elastic_dir("fixed");
    let plan = FaultPlan::new(7).with_crash(2, 6);
    let mut c = Cluster::with_faults(
        plummer_sphere(1500, 51),
        5,
        ClusterConfig::default(),
        plan,
        Some(RecoveryConfig { dir, every: 1 }),
    );
    for _ in 0..8 {
        c.step();
    }
    assert_eq!(c.rank_count(), 5, "fixed-world recovery changed the world");
    assert_eq!(c.view().world(), 5);
    assert_eq!(c.total_particles(), 1500);
    assert!(c.membership_log().is_empty(), "no view change expected");
}

#[test]
fn autoscale_shrinks_an_idle_cluster_to_the_floor() {
    // 8 ranks over 640 particles is far below the idle threshold: the
    // policy retires ranks every cooldown window until the floor.
    let mut c = Cluster::new(plummer_sphere(640, 61), 8, ClusterConfig::default());
    c.enable_longrun(LongRunConfig::default());
    c.enable_autoscale(AutoscaleConfig {
        min_ranks: 4,
        idle_particles_per_rank: 1.0e4,
        idle_steps: 2,
        cooldown_steps: 2,
        shrink_by: 2,
        ..AutoscaleConfig::default()
    });
    for _ in 0..12 {
        c.step();
    }
    assert_eq!(c.rank_count(), 4, "idle cluster did not shrink to the floor");
    assert_eq!(c.total_particles(), 640);
    let decisions = c.autoscale().expect("policy enabled").decisions();
    assert!(decisions.len() >= 2, "decisions: {decisions:?}");
    assert!(!c.membership_log().is_empty());
}

#[test]
fn autoscale_grows_when_a_grow_rule_opens() {
    // A rule that opens immediately (step seconds are always positive)
    // stands in for sustained step-time creep; its open transition must
    // drive an admit through the same membership path as a manual grow.
    let mut cfg = LongRunConfig::default();
    cfg.rules.push(Rule::new(
        "always-hot",
        "bonsai_step_seconds",
        Condition::Above(0.0),
        Severity::Warning,
        1,
        1,
    ));
    let mut c = Cluster::new(plummer_sphere(800, 67), 4, ClusterConfig::default());
    c.enable_longrun(cfg);
    c.enable_autoscale(AutoscaleConfig {
        grow_rules: vec!["always-hot".to_string()],
        grow_by: 2,
        // Idle shrink disabled for the test: the population is tiny.
        idle_particles_per_rank: 0.0,
        ..AutoscaleConfig::default()
    });
    for _ in 0..3 {
        c.step();
    }
    assert_eq!(c.rank_count(), 6, "open grow-rule did not admit ranks");
    assert_eq!(c.total_particles(), 800);
    let ch = c.membership_log().changes().last().expect("grow logged");
    assert_eq!((ch.from_world, ch.to_world), (4, 6));
    assert_eq!(sorted_ids(&c), (0..800).collect::<Vec<u64>>());
}

#[test]
fn drop_migrants_sabotage_loses_particles() {
    // The CI gate's self-test hook: with migrants silently discarded, a
    // view change must visibly violate conservation — proof the gate's
    // particle-count check is load-bearing.
    let mut c = Cluster::new(plummer_sphere(1000, 71), 4, ClusterConfig::default());
    c.set_drop_migrants(true);
    c.admit_ranks(2);
    assert!(
        c.total_particles() < 1000,
        "sabotaged migration lost nothing — the conservation gate would pass vacuously"
    );
}
