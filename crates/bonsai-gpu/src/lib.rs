//! # bonsai-gpu
//!
//! A calibrated SIMT device model standing in for the NVIDIA GPUs of the
//! paper (no CUDA hardware is assumed anywhere in this workspace).
//!
//! The paper's reported performance is a *derived* quantity: interactions are
//! counted during the walk and converted to flops at fixed per-interaction
//! rates (§VI-A), then divided by wall-clock time. Our reproduction runs the
//! identical algorithm on the CPU and obtains identical interaction counts;
//! this crate supplies the missing piece — the flops→seconds conversion of a
//! K20X or C2075 — as an instruction-level timing model:
//!
//! * [`device`] — hardware descriptions (SM count, clock, cores/SFUs per SM,
//!   shared memory, occupancy rules) for the Kepler K20X and Fermi C2075;
//! * [`kernel`] — per-interaction instruction mixes (exactly the §VI-A
//!   instruction counts) and the kernel variants of Fig. 1: the Fermi
//!   shared-memory tree-walk kernel, the same kernel running unmodified on
//!   Kepler, and the `__shfl`-tuned Kepler kernel that cut shared-memory use
//!   by 90% (§III-A);
//! * [`pipeline`] — a whole-device model covering the non-gravity GPU phases
//!   too (SFC sort, tree construction, tree properties), with rates
//!   calibrated to the single-GPU column of Table II.
//!
//! Calibration quality is asserted in tests: every Fig. 1 bar is reproduced
//! within 10%.
//!
//! ```
//! use bonsai_gpu::{KernelModel, KernelVariant, K20X};
//! use bonsai_gpu::kernel::paper_mix;
//!
//! // The tuned Kepler kernel sustains >1.7 Tflops on the paper's mix (§III-A).
//! let model = KernelModel::new(K20X, KernelVariant::TreeKeplerTuned);
//! assert!(model.achieved_gflops(paper_mix(1_000_000)) > 1700.0);
//! ```

#![deny(missing_docs)]

pub mod device;
pub mod isa;
pub mod kernel;
pub mod pipeline;
pub mod power;

pub use device::{Arch, DeviceSpec, C2075, K20X};
pub use kernel::{KernelModel, KernelVariant};
pub use pipeline::{
    GpuModel, StreamCost, BUILD_COST, DOMAIN_COST, INTEGRATE_COST, PROPS_COST, SORT_COST,
};
