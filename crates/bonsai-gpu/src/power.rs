//! Power-efficiency model (§II).
//!
//! "The move from CPU-based to GPU-based supercomputers is motivated by
//! lower energy consumption per flop … K computer offers 830 Mflops/watt
//! compared to 2.1 (2.7) Gflops/watt for Titan (Piz Daint)."
//!
//! We model per-node power as a GPU TDP share (scaled by how busy the force
//! kernels keep the device) plus host CPU and network interface shares, and
//! reproduce the §II machine-efficiency comparison as well as the achieved
//! application efficiency of the record run.

use serde::Serialize;

/// Node-level power characteristics.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NodePower {
    /// GPU board power at full load, watts (K20X TDP: 235 W).
    pub gpu_tdp_w: f64,
    /// GPU idle power, watts.
    pub gpu_idle_w: f64,
    /// Host CPU package power under the Bonsai load, watts.
    pub cpu_w: f64,
    /// NIC + blade overhead share per node, watts.
    pub overhead_w: f64,
}

/// A K20X node on a Cray XK7/XC30 blade.
pub const K20X_NODE: NodePower = NodePower {
    gpu_tdp_w: 235.0,
    gpu_idle_w: 25.0,
    cpu_w: 90.0,
    overhead_w: 40.0,
};

impl NodePower {
    /// Mean node power when the GPU is busy for `gpu_duty` (0..1) of the
    /// step.
    pub fn node_watts(&self, gpu_duty: f64) -> f64 {
        let duty = gpu_duty.clamp(0.0, 1.0);
        self.gpu_idle_w + duty * (self.gpu_tdp_w - self.gpu_idle_w) + self.cpu_w + self.overhead_w
    }

    /// Application energy efficiency in Gflops/W given achieved per-node
    /// Gflops and GPU duty cycle.
    pub fn gflops_per_watt(&self, achieved_gflops_per_node: f64, gpu_duty: f64) -> f64 {
        achieved_gflops_per_node / self.node_watts(gpu_duty)
    }
}

/// Green500-style machine peak efficiencies quoted by §II, as data for the
/// comparison bench.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MachineEfficiency {
    /// Machine name.
    pub name: &'static str,
    /// Peak-linpack Gflops per watt (the §II numbers).
    pub peak_gflops_per_watt: f64,
}

/// §II: K computer, 830 Mflops/W.
pub const K_COMPUTER: MachineEfficiency = MachineEfficiency {
    name: "K computer",
    peak_gflops_per_watt: 0.83,
};
/// §II: Titan, 2.1 Gflops/W.
pub const TITAN_EFF: MachineEfficiency = MachineEfficiency {
    name: "Titan",
    peak_gflops_per_watt: 2.1,
};
/// §II: Piz Daint, 2.7 Gflops/W.
pub const PIZ_DAINT_EFF: MachineEfficiency = MachineEfficiency {
    name: "Piz Daint",
    peak_gflops_per_watt: 2.7,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_ii_ordering() {
        // GPUs beat the CPU-only K computer by 2.5-3x per watt.
        assert!(TITAN_EFF.peak_gflops_per_watt / K_COMPUTER.peak_gflops_per_watt > 2.0);
        assert!(PIZ_DAINT_EFF.peak_gflops_per_watt > TITAN_EFF.peak_gflops_per_watt);
    }

    #[test]
    fn node_power_magnitude() {
        // A busy XK7 node draws ~350-400 W; idle GPU ~150-160 W.
        let busy = K20X_NODE.node_watts(1.0);
        let idle = K20X_NODE.node_watts(0.0);
        assert!((330.0..420.0).contains(&busy), "busy {busy} W");
        assert!((120.0..180.0).contains(&idle), "idle {idle} W");
    }

    #[test]
    fn record_run_application_efficiency() {
        // At 18600 GPUs the application sustains 1.33 Tflops/node with the
        // GPU busy ~75% of the step (3.58 s of 4.77 s): ~3.6 Gflops/W
        // application efficiency — comfortably above Titan's 2.1 GF/W
        // Linpack number because SP flops are cheaper than DP.
        let duty = 3.58 / 4.77;
        let eff = K20X_NODE.gflops_per_watt(1330.0, duty);
        assert!((3.0..4.5).contains(&eff), "app efficiency {eff} GF/W");
    }

    #[test]
    fn duty_cycle_clamps() {
        assert_eq!(K20X_NODE.node_watts(2.0), K20X_NODE.node_watts(1.0));
        assert_eq!(K20X_NODE.node_watts(-1.0), K20X_NODE.node_watts(0.0));
    }
}
