//! Kernel timing models for the force kernels of Fig. 1.
//!
//! Each interaction is costed at the instruction level using exactly the
//! §VI-A instruction mixes, plus three documented model parameters:
//!
//! * **overhead** — non-flop instructions per interaction (loop control,
//!   source loads, stack/MAC work for tree kernels). Calibrated once against
//!   the measured single-kernel rates: ~7 for the direct kernel, ~19 for the
//!   tree-walk kernel.
//! * **shared-traffic penalty** — cycle inflation (6.5%) for kernel variants
//!   that stage interaction data through shared memory (bank conflicts and
//!   extra ld/st); the `__shfl`-tuned kernel avoids it (§III-A: shared-memory
//!   use cut by 90% in favour of registers).
//! * **Kepler legacy-ILP penalty** — 1.5× for Fermi-tuned kernels run
//!   unmodified on Kepler, whose statically scheduled dual-issue SMX needs
//!   instruction-level parallelism the old kernel does not expose. This is
//!   the effect Fig. 1 demonstrates: "a naive use of the Fermi optimized
//!   kernels on Kepler GPUs delivers relatively poor performance".
//!
//! SFU (`rsqrt`) cost combines differently per architecture: Fermi's SFU has
//! its own issue port and overlaps with ALU work (`max`), Kepler's SFU shares
//! issue bandwidth (`+`).

use crate::device::{Arch, DeviceSpec};
use bonsai_tree::InteractionCounts;
#[cfg(test)]
use bonsai_tree::{PC_FLOPS, PP_FLOPS};
use serde::Serialize;

/// Instruction mix of one interaction (per-lane).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct InstrMix {
    /// Single-issue arithmetic instructions (sub/add/mul count 1 flop each).
    pub arith: u32,
    /// Fused multiply-adds (2 flops each).
    pub fma: u32,
    /// Reciprocal square roots (counted as 4 flops, executed on the SFU).
    pub rsqrt: u32,
}

impl InstrMix {
    /// §VI-A particle-particle mix: 4 sub, 3 mul, 6 fma, 1 rsqrt.
    pub const PP: InstrMix = InstrMix { arith: 7, fma: 6, rsqrt: 1 };
    /// §VI-A particle-cell mix: 4 sub, 6 add, 17 mul, 17 fma, 1 rsqrt.
    pub const PC: InstrMix = InstrMix { arith: 27, fma: 17, rsqrt: 1 };

    /// Counted flops (must reproduce the paper's 23 / 65).
    pub fn flops(&self) -> u64 {
        self.arith as u64 + 2 * self.fma as u64 + 4 * self.rsqrt as u64
    }

    /// ALU instruction slots (arith + fma each take one issue slot).
    pub fn alu_instr(&self) -> f64 {
        (self.arith + self.fma) as f64
    }
}

/// Which incarnation of the force kernel runs (the bars of Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum KernelVariant {
    /// Tree-walk kernel as tuned for Fermi (shared-memory interaction
    /// staging), running on its native architecture.
    TreeFermi,
    /// The same Fermi kernel executed unmodified on Kepler ("K20X/original").
    TreeKeplerOriginal,
    /// The `__shfl`-based Kepler kernel ("K20X/tuned").
    TreeKeplerTuned,
    /// Direct N-body kernel (NVIDIA SDK style) on either architecture.
    Direct,
}

/// A calibrated kernel timing model bound to a device.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct KernelModel {
    /// Device executing the kernel.
    pub device: DeviceSpec,
    /// Variant being modelled.
    pub variant: KernelVariant,
    /// Non-flop instructions charged per interaction.
    pub overhead_instr: f64,
    /// Cycle inflation from shared-memory staging (1.0 = none).
    pub shared_penalty: f64,
    /// Cycle inflation from insufficient ILP on Kepler (1.0 = none).
    pub ilp_penalty: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

/// Device-memory bytes charged per particle-particle interaction. A source
/// body is one 16-byte `float4` fetched once and broadcast to the 32 lanes
/// of the warp that shares it (shared memory on Fermi, `__shfl` on Kepler),
/// so the per-lane DRAM cost is 16/32 B. With 23 flops against half a byte
/// the kernel sits far right on the roofline — compute-bound, as Fig. 1's
/// near-peak bars require.
pub const PP_BYTES_PER_INTERACTION: f64 = 16.0 / 32.0;
/// Device-memory bytes charged per particle-cell interaction: a 64-byte
/// multipole record (COM `float4` + quadrupole moments), warp-shared like
/// the p-p sources, so 64/32 B per lane-interaction.
pub const PC_BYTES_PER_INTERACTION: f64 = 64.0 / 32.0;

/// Threads per block used by all force kernels.
pub const THREADS_PER_BLOCK: u32 = 256;
/// Shared memory per block of the Fermi-style kernel (interaction staging).
pub const SHARED_FERMI_KERNEL: u32 = 8 * 1024;
/// Shared memory per block of the shuffle-tuned kernel (90% reduction, §III-A).
pub const SHARED_TUNED_KERNEL: u32 = 800;

impl KernelModel {
    /// Build the model for a (device, variant) pair. Panics on nonsensical
    /// combinations (tuned Kepler kernel on Fermi).
    pub fn new(device: DeviceSpec, variant: KernelVariant) -> Self {
        let (overhead_instr, shared_bytes) = match variant {
            KernelVariant::Direct => (7.0, 0),
            KernelVariant::TreeFermi | KernelVariant::TreeKeplerOriginal => {
                (19.2, SHARED_FERMI_KERNEL)
            }
            KernelVariant::TreeKeplerTuned => {
                assert_eq!(device.arch, Arch::Kepler, "__shfl requires Kepler");
                (19.2, SHARED_TUNED_KERNEL)
            }
        };
        let shared_penalty = match variant {
            KernelVariant::TreeFermi | KernelVariant::TreeKeplerOriginal => 1.065,
            _ => 1.0,
        };
        let ilp_penalty = match (variant, device.arch) {
            (KernelVariant::TreeKeplerOriginal, Arch::Kepler) => 1.5,
            _ => 1.0,
        };
        Self {
            device,
            variant,
            overhead_instr,
            shared_penalty,
            ilp_penalty,
            occupancy: device.occupancy(shared_bytes, THREADS_PER_BLOCK),
        }
    }

    /// Effective core-cycles one lane spends on one interaction of `mix`.
    pub fn cycles_per_interaction(&self, mix: InstrMix) -> f64 {
        let alu = mix.alu_instr() + self.overhead_instr;
        let sfu = mix.rsqrt as f64 * self.device.rsqrt_core_cycles();
        let issue = match self.device.arch {
            // Fermi: dedicated SFU port overlaps with ALU issue.
            Arch::Fermi => alu.max(sfu),
            // Kepler: SFU shares scheduler bandwidth.
            Arch::Kepler => alu + sfu,
        };
        issue * self.shared_penalty * self.ilp_penalty / self.occupancy
    }

    /// Simulated execution time for a batch of interactions.
    pub fn time_for(&self, counts: InteractionCounts) -> f64 {
        let cycles = counts.pp as f64 * self.cycles_per_interaction(InstrMix::PP)
            + counts.pc as f64 * self.cycles_per_interaction(InstrMix::PC);
        cycles / self.device.lane_rate()
    }

    /// Device-memory bytes a batch moves under the warp-shared fetch model
    /// ([`PP_BYTES_PER_INTERACTION`] / [`PC_BYTES_PER_INTERACTION`]).
    pub fn bytes_for(&self, counts: InteractionCounts) -> f64 {
        counts.pp as f64 * PP_BYTES_PER_INTERACTION + counts.pc as f64 * PC_BYTES_PER_INTERACTION
    }

    /// Occupancy-limited compute ceiling in Gflops: the device's single-
    /// precision peak scaled by the achieved occupancy. This is the roofline
    /// the force kernels can actually reach — latency hiding, not raw issue
    /// width, is what occupancy buys — and [`KernelModel::achieved_gflops`]
    /// can never exceed it: the cycle model charges at most 2 flops per
    /// lane-cycle and inflates cycles by `1/occupancy`.
    pub fn compute_ceiling_gflops(&self) -> f64 {
        self.device.peak_sp_gflops() * self.occupancy
    }

    /// Achieved Gflops (at the §VI-A flop rates) for a batch.
    pub fn achieved_gflops(&self, counts: InteractionCounts) -> f64 {
        let t = self.time_for(counts);
        if t <= 0.0 {
            0.0
        } else {
            counts.flops() as f64 / t / 1e9
        }
    }
}

/// The interaction mix of the paper's production runs (Table II, 4096-GPU
/// weak-scaling column: 1718 p-p and 6765 p-c per particle), used to quote
/// single-number kernel rates comparable to Fig. 1.
pub fn paper_mix(n_particles: u64) -> InteractionCounts {
    InteractionCounts {
        pp: 1718 * n_particles,
        pc: 6765 * n_particles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{C2075, K20X};

    fn gflops(device: DeviceSpec, variant: KernelVariant) -> f64 {
        KernelModel::new(device, variant).achieved_gflops(paper_mix(1_000_000))
    }

    #[test]
    fn instruction_mix_flops_match_paper() {
        assert_eq!(InstrMix::PP.flops(), PP_FLOPS);
        assert_eq!(InstrMix::PC.flops(), PC_FLOPS);
    }

    #[test]
    fn fig1_direct_k20x_within_10pct() {
        let direct = KernelModel::new(K20X, KernelVariant::Direct)
            .achieved_gflops(InteractionCounts { pp: 1_000_000, pc: 0 });
        assert!((direct - 1746.0).abs() / 1746.0 < 0.10, "K20X direct {direct}");
    }

    #[test]
    fn fig1_direct_c2075_within_10pct() {
        let direct = KernelModel::new(C2075, KernelVariant::Direct)
            .achieved_gflops(InteractionCounts { pp: 1_000_000, pc: 0 });
        assert!((direct - 638.0).abs() / 638.0 < 0.10, "C2075 direct {direct}");
    }

    #[test]
    fn fig1_tree_bars_within_10pct() {
        let fermi = gflops(C2075, KernelVariant::TreeFermi);
        let orig = gflops(K20X, KernelVariant::TreeKeplerOriginal);
        let tuned = gflops(K20X, KernelVariant::TreeKeplerTuned);
        assert!((fermi - 460.0).abs() / 460.0 < 0.10, "C2075 tree {fermi}");
        assert!((orig - 829.0).abs() / 829.0 < 0.10, "K20X original {orig}");
        assert!((tuned - 1768.0).abs() / 1768.0 < 0.10, "K20X tuned {tuned}");
    }

    #[test]
    fn fig1_ratios_hold() {
        // "With tuning, the K20X is twice as fast as the original kernel,
        // and is 4x faster than the C2075."
        let fermi = gflops(C2075, KernelVariant::TreeFermi);
        let orig = gflops(K20X, KernelVariant::TreeKeplerOriginal);
        let tuned = gflops(K20X, KernelVariant::TreeKeplerTuned);
        assert!((tuned / orig - 2.0).abs() < 0.35, "tuned/orig {}", tuned / orig);
        assert!((tuned / fermi - 4.0).abs() < 0.6, "tuned/fermi {}", tuned / fermi);
    }

    #[test]
    fn tuned_kernel_exceeds_1_7_tflops() {
        // §III-A: "delivering superb performance in excess of 1.7 Tflops on
        // a single K20X."
        assert!(gflops(K20X, KernelVariant::TreeKeplerTuned) > 1700.0);
    }

    #[test]
    fn time_scales_linearly_with_counts() {
        let m = KernelModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let t1 = m.time_for(paper_mix(1_000_000));
        let t2 = m.time_for(paper_mix(2_000_000));
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn tuned_kernel_on_fermi_panics() {
        let _ = KernelModel::new(C2075, KernelVariant::TreeKeplerTuned);
    }

    #[test]
    fn zero_counts_zero_time() {
        let m = KernelModel::new(K20X, KernelVariant::Direct);
        assert_eq!(m.time_for(InteractionCounts::zero()), 0.0);
        assert_eq!(m.achieved_gflops(InteractionCounts::zero()), 0.0);
    }

    #[test]
    fn attained_never_exceeds_the_compute_ceiling() {
        // The roofline invariant at the kernel-model level: for every
        // (device, variant) pair and every mix, achieved Gflops stay under
        // the occupancy-scaled peak.
        let pairs = [
            (K20X, KernelVariant::Direct),
            (K20X, KernelVariant::TreeKeplerOriginal),
            (K20X, KernelVariant::TreeKeplerTuned),
            (C2075, KernelVariant::Direct),
            (C2075, KernelVariant::TreeFermi),
        ];
        for (dev, var) in pairs {
            let m = KernelModel::new(dev, var);
            let ceiling = m.compute_ceiling_gflops();
            for counts in [
                InteractionCounts { pp: 1_000_000, pc: 0 },
                InteractionCounts { pp: 0, pc: 1_000_000 },
                paper_mix(1_000_000),
            ] {
                let got = m.achieved_gflops(counts);
                assert!(
                    got <= ceiling * (1.0 + 1e-12),
                    "{dev:?}/{var:?}: attained {got} > ceiling {ceiling}"
                );
            }
        }
    }

    #[test]
    fn bytes_scale_linearly_with_counts() {
        let m = KernelModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let b1 = m.bytes_for(paper_mix(1_000_000));
        let b2 = m.bytes_for(paper_mix(2_000_000));
        assert!((b2 / b1 - 2.0).abs() < 1e-12);
        let pp_only = m.bytes_for(InteractionCounts { pp: 64, pc: 0 });
        assert_eq!(pp_only, 64.0 * PP_BYTES_PER_INTERACTION);
    }

    #[test]
    fn gravity_is_compute_bound_on_the_roofline() {
        // Arithmetic intensity of the production mix is high enough that
        // the bandwidth roof sits far above the compute roof — the binding
        // ceiling of every gravity kernel must be compute.
        let m = KernelModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let counts = paper_mix(1_000_000);
        let intensity = counts.flops() as f64 / m.bytes_for(counts);
        let bw_ceiling = intensity * K20X.mem_bw_gbs;
        assert!(bw_ceiling > m.compute_ceiling_gflops(), "bw roof {bw_ceiling}");
    }
}
