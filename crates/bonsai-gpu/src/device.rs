//! GPU hardware descriptions and occupancy rules.

use serde::Serialize;

/// GPU micro-architecture generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Arch {
    /// Fermi (GF1xx): dedicated SFU issue port that overlaps with the ALU
    /// pipeline; 1536 resident threads per SM.
    Fermi,
    /// Kepler (GK110): SFU shares scheduler issue bandwidth; static
    /// scheduling needs ILP; 2048 resident threads per SMX.
    Kepler,
}

/// Description of one GPU model.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Architecture generation.
    pub arch: Arch,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// FP32 cores per SM.
    pub cores_per_sm: u32,
    /// Special-function units per SM (rsqrt throughput).
    pub sfus_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Device memory in GB (ECC-on usable, as Table I reports 5.4 GB).
    pub mem_gb: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// PCIe host link bandwidth, GB/s (gen2 x16 effective).
    pub pcie_gbs: f64,
}

impl DeviceSpec {
    /// Theoretical peak single-precision Gflops (`2 × cores × clock`).
    pub fn peak_sp_gflops(&self) -> f64 {
        2.0 * self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz
    }

    /// Lane-cycles per second: how many per-thread instructions the whole
    /// device retires per second at one instruction per core per cycle.
    pub fn lane_rate(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Cost of one `rsqrt` in core-cycle equivalents (ALU:SFU ratio).
    pub fn rsqrt_core_cycles(&self) -> f64 {
        self.cores_per_sm as f64 / self.sfus_per_sm as f64
    }

    /// Achieved occupancy for a kernel using `shared_per_block` bytes of
    /// shared memory with `threads_per_block` threads.
    pub fn occupancy(&self, shared_per_block: u32, threads_per_block: u32) -> f64 {
        let by_shared = if shared_per_block == 0 {
            self.max_blocks_per_sm
        } else {
            self.shared_per_sm / shared_per_block
        };
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let blocks = by_shared.min(by_threads).min(self.max_blocks_per_sm);
        (blocks * threads_per_block) as f64 / self.max_threads_per_sm as f64
    }

    /// Largest particle count that fits in device memory, at the working-set
    /// footprint of the tree-code (positions, velocities, accelerations,
    /// keys, tree nodes and buffers — ~270 bytes/particle, consistent with
    /// the paper's "up to 20 million particles per K20X" on 5.4 GB).
    pub fn max_particles(&self) -> u64 {
        const BYTES_PER_PARTICLE: f64 = 270.0;
        (self.mem_gb * 1e9 / BYTES_PER_PARTICLE) as u64
    }
}

/// NVIDIA Tesla K20X (Kepler GK110), the GPU of Titan and Piz Daint.
pub const K20X: DeviceSpec = DeviceSpec {
    name: "K20X",
    arch: Arch::Kepler,
    sm_count: 14,
    clock_ghz: 0.732,
    cores_per_sm: 192,
    sfus_per_sm: 32,
    shared_per_sm: 48 * 1024,
    max_threads_per_sm: 2048,
    max_blocks_per_sm: 16,
    mem_gb: 5.4,
    mem_bw_gbs: 250.0,
    pcie_gbs: 6.0,
};

/// NVIDIA Tesla C2075 (Fermi GF110), the comparison GPU of Fig. 1.
pub const C2075: DeviceSpec = DeviceSpec {
    name: "C2075",
    arch: Arch::Fermi,
    sm_count: 14,
    clock_ghz: 1.15,
    cores_per_sm: 32,
    sfus_per_sm: 4,
    shared_per_sm: 48 * 1024,
    max_threads_per_sm: 1536,
    max_blocks_per_sm: 8,
    mem_gb: 5.4,
    mem_bw_gbs: 144.0,
    pcie_gbs: 6.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20x_peak_matches_spec_sheet() {
        // 3.935 Tflops SP; the paper rounds to 3.95.
        let peak = K20X.peak_sp_gflops();
        assert!((peak - 3935.0).abs() < 1.0, "peak {peak}");
    }

    #[test]
    fn c2075_peak_matches_spec_sheet() {
        let peak = C2075.peak_sp_gflops();
        assert!((peak - 1030.0).abs() < 1.0, "peak {peak}");
    }

    #[test]
    fn kepler_is_four_times_fermi_peak() {
        // Fig. 1 caption: "the hardware is four times faster in (peak)
        // single precision".
        let ratio = K20X.peak_sp_gflops() / C2075.peak_sp_gflops();
        assert!((ratio - 3.82).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn occupancy_rules() {
        // Shared-memory-free kernel: limited by threads (2048/256 = 8 blocks).
        assert_eq!(K20X.occupancy(0, 256), 1.0);
        // 8 KB/block: 6 blocks by shared → 1536/2048 threads.
        assert!((K20X.occupancy(8 * 1024, 256) - 0.75).abs() < 1e-12);
        // Fermi with 8 KB/block: 6 blocks → full 1536 threads.
        assert!((C2075.occupancy(8 * 1024, 256) - 1.0).abs() < 1e-12);
        // Huge shared use: single block.
        assert!((K20X.occupancy(40 * 1024, 256) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn memory_capacity_matches_paper_envelope() {
        // Paper: 13M/GPU in production, up to 20M possible on 5.4 GB.
        let cap = K20X.max_particles();
        assert!((13_000_000..25_000_000).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn rsqrt_cost() {
        assert!((K20X.rsqrt_core_cycles() - 6.0).abs() < 1e-12);
        assert!((C2075.rsqrt_core_cycles() - 8.0).abs() < 1e-12);
    }
}
