//! Symbolic instruction streams for the force kernels.
//!
//! The paper's §VI-A footnote: "All operation counts were verified with the
//! disassembling command `cuobjdump -sass` in the CUDA toolkit." We do the
//! equivalent mechanically: the p-p and p-c kernels are written *once more*
//! as explicit instruction sequences over a register file, and tests verify
//! that
//!
//! 1. interpreting the stream reproduces the optimized Rust kernels
//!    bit-for-bit-tolerance (`bonsai_tree::kernels`), and
//! 2. the instruction census matches §VI-A exactly:
//!    p-p = 4 sub + 3 mul + 6 fma + 1 rsqrt (23 flops at rsqrt = 4),
//!    p-c = 4 sub + 6 add + 17 mul + 17 fma + 1 rsqrt (65 flops).
//!
//! This pins the flop accounting to an artifact instead of a constant.

/// One scalar instruction over the virtual register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `r[d] = r[a] - r[b]` (1 flop).
    Sub(u8, u8, u8),
    /// `r[d] = r[a] + r[b]` (1 flop).
    Add(u8, u8, u8),
    /// `r[d] = r[a] * r[b]` (1 flop).
    Mul(u8, u8, u8),
    /// `r[d] = r[a] * r[b] + r[c]` (2 flops).
    Fma(u8, u8, u8, u8),
    /// `r[d] = 1 / sqrt(r[a])` (counted as 4 flops, runs on the SFU).
    Rsqrt(u8, u8),
}

/// Census of an instruction stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrCensus {
    /// Subtractions.
    pub sub: u32,
    /// Additions.
    pub add: u32,
    /// Multiplications.
    pub mul: u32,
    /// Fused multiply-adds.
    pub fma: u32,
    /// Reciprocal square roots.
    pub rsqrt: u32,
}

impl InstrCensus {
    /// Count instructions in a stream.
    pub fn of(stream: &[Instr]) -> Self {
        let mut c = Self::default();
        for i in stream {
            match i {
                Instr::Sub(..) => c.sub += 1,
                Instr::Add(..) => c.add += 1,
                Instr::Mul(..) => c.mul += 1,
                Instr::Fma(..) => c.fma += 1,
                Instr::Rsqrt(..) => c.rsqrt += 1,
            }
        }
        c
    }

    /// Flops at the paper's rates (rsqrt = 4, fma = 2, others 1).
    pub fn flops(&self) -> u32 {
        self.sub + self.add + self.mul + 2 * self.fma + 4 * self.rsqrt
    }
}

/// Execute a stream over a register file.
pub fn execute(stream: &[Instr], regs: &mut [f64]) {
    for i in stream {
        match *i {
            Instr::Sub(d, a, b) => regs[d as usize] = regs[a as usize] - regs[b as usize],
            Instr::Add(d, a, b) => regs[d as usize] = regs[a as usize] + regs[b as usize],
            Instr::Mul(d, a, b) => regs[d as usize] = regs[a as usize] * regs[b as usize],
            Instr::Fma(d, a, b, c) => {
                regs[d as usize] = regs[a as usize] * regs[b as usize] + regs[c as usize]
            }
            Instr::Rsqrt(d, a) => regs[d as usize] = 1.0 / regs[a as usize].sqrt(),
        }
    }
}

/// Register convention for [`pp_stream`]:
///
/// inputs: 0..3 = target xyz, 4..6 = source xyz, 7 = source mass, 8 = ε².
/// outputs: 20 = φ contribution, 21..23 = acceleration xyz.
pub fn pp_stream() -> Vec<Instr> {
    use Instr::*;
    vec![
        // dr = src - tgt; r2 = eps2 + dr·dr           (3 sub, 3 fma)
        Sub(10, 4, 0),  // dx
        Sub(11, 5, 1),  // dy
        Sub(12, 6, 2),  // dz
        Fma(13, 10, 10, 8),  // r2 = dx² + eps2
        Fma(13, 11, 11, 13), // r2 += dy²
        Fma(13, 12, 12, 13), // r2 += dz²
        // rinv = rsqrt(r2); rinv2 = rinv²; mrinv = m·rinv; mrinv3 = mrinv·rinv2
        Rsqrt(14, 13),       // (1 rsqrt)
        Mul(15, 14, 14),     // rinv2            (3 mul)
        Mul(16, 7, 14),      // mrinv
        Mul(17, 16, 15),     // mrinv3
        // φ -= mrinv                             (1 sub)
        Sub(20, 20, 16),
        // a += dr * mrinv3                       (3 fma)
        Fma(21, 10, 17, 21),
        Fma(22, 11, 17, 22),
        Fma(23, 12, 17, 23),
    ]
}

/// Register convention for [`pc_stream`]:
///
/// inputs: 0..3 = target xyz, 4..6 = cell COM xyz, 7 = cell mass, 8 = ε²,
/// 30..35 = quadrupole `[xx, xy, xz, yy, yz, zz]`; constants 50 = 0.5,
/// 51 = −1.5, 52 = −2.5, 53 = −3.0.
/// outputs: 20 = φ contribution, 21..23 = acceleration xyz.
///
/// The factorization is chosen so the census lands exactly on §VI-A's
/// 4 sub + 6 add + 17 mul + 17 fma + 1 rsqrt. The two load-bearing
/// algebraic rewrites (both value-preserving):
///
/// * `s = m·rinv³ − 3/2·tr·rinv⁵ + 15/2·rqr·rinv⁷` is assembled as
///   `fma(w, −3·rinv², m·rinv³)` with `w = ½tr·rinv³ − 5/2·rqr·rinv⁵`,
///   reusing the two products the potential already computed;
/// * the cell-term scale `−3·rinv⁵` is `(−3·rinv²)·rinv³`, reusing the same
///   `−3·rinv²`.
pub fn pc_stream() -> Vec<Instr> {
    use Instr::*;
    vec![
        // dr = com - tgt                              (3 sub)
        Sub(10, 4, 0),
        Sub(11, 5, 1),
        Sub(12, 6, 2),
        // r2 = dr·dr + eps2                           (1 mul, 2 fma, 1 add)
        Mul(13, 10, 10),
        Fma(13, 11, 11, 13),
        Fma(13, 12, 12, 13),
        Add(13, 13, 8),
        // inverse powers                              (1 rsqrt, 3 mul)
        Rsqrt(14, 13),   // rinv
        Mul(15, 14, 14), // rinv2
        Mul(16, 15, 14), // rinv3
        Mul(17, 16, 15), // rinv5
        // monopole: φ -= m·rinv                       (2 mul, 1 sub)
        Mul(18, 7, 14),  // mrinv
        Sub(20, 20, 18),
        Mul(19, 18, 15), // mrinv3 = m·rinv³
        // tr(Q)                                       (2 add)
        Add(40, 30, 33),
        Add(40, 40, 35),
        // Qdr = Q · dr                                (3 mul, 6 fma)
        Mul(41, 30, 10),
        Fma(41, 31, 11, 41),
        Fma(41, 32, 12, 41),
        Mul(42, 31, 10),
        Fma(42, 33, 11, 42),
        Fma(42, 34, 12, 42),
        Mul(43, 32, 10),
        Fma(43, 34, 11, 43),
        Fma(43, 35, 12, 43),
        // rqr = dr · Qdr                              (1 mul, 2 fma)
        Mul(44, 10, 41),
        Fma(44, 11, 42, 44),
        Fma(44, 12, 43, 44),
        // potential quadrupole terms                  (4 mul, 2 add)
        Mul(45, 40, 16), // p1  = tr·rinv3
        Mul(46, 45, 50), // p1h = ½·tr·rinv3
        Add(20, 20, 46), // φ += p1h
        Mul(47, 44, 17), // q5  = rqr·rinv5
        Mul(48, 47, 51), // p2  = −3/2·rqr·rinv5
        Add(20, 20, 48), // φ += p2
        // acceleration scalars, reusing p1h and q5    (3 mul, 1 add, 2 fma)
        Mul(49, 47, 52),     // wa = −5/2·rqr·rinv5
        Add(49, 49, 46),     // w  = ½tr·rinv3 − 5/2·rqr·rinv5
        Mul(54, 15, 53),     // c3 = −3·rinv2
        Fma(55, 49, 54, 19), // s  = w·c3 + m·rinv3
        Mul(56, 54, 16),     // qs = c3·rinv3 = −3·rinv5
        // a += dr·s + Qdr·qs                          (6 fma)
        Fma(21, 10, 55, 21),
        Fma(22, 11, 55, 22),
        Fma(23, 12, 55, 23),
        Fma(21, 41, 56, 21),
        Fma(22, 42, 56, 22),
        Fma(23, 43, 56, 23),
    ]
}

/// Number of virtual registers the streams use.
pub const REG_FILE: usize = 64;

/// Initialize a register file with the pp/pc input convention and the
/// constants the pc stream expects.
pub fn make_regs(
    tgt: [f64; 3],
    src: [f64; 3],
    mass: f64,
    eps2: f64,
    quad: [f64; 6],
) -> [f64; REG_FILE] {
    let mut r = [0.0; REG_FILE];
    r[0..3].copy_from_slice(&tgt);
    r[4..7].copy_from_slice(&src);
    r[7] = mass;
    r[8] = eps2;
    r[30..36].copy_from_slice(&quad);
    r[50] = 0.5;
    r[51] = -1.5;
    r[52] = -2.5;
    r[53] = -3.0;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_tree::kernels::{p_c, p_p};
    use bonsai_util::{Sym3, Vec3};

    #[test]
    fn pp_census_matches_section_vi_a() {
        let c = InstrCensus::of(&pp_stream());
        assert_eq!(
            c,
            InstrCensus {
                sub: 4,
                add: 0,
                mul: 3,
                fma: 6,
                rsqrt: 1
            }
        );
        assert_eq!(c.flops(), 23);
    }

    #[test]
    fn pc_census_matches_section_vi_a() {
        let c = InstrCensus::of(&pc_stream());
        assert_eq!(
            c,
            InstrCensus {
                sub: 4,
                add: 6,
                mul: 17,
                fma: 17,
                rsqrt: 1
            },
            "pc stream census {c:?}"
        );
        assert_eq!(c.flops(), 65);
    }

    #[test]
    fn interpreted_pp_matches_fast_kernel() {
        let tgt = Vec3::new(0.1, -0.2, 0.3);
        let src = Vec3::new(1.5, 2.5, -0.5);
        let (mass, eps2) = (2.5, 0.01);
        let mut regs = make_regs(tgt.to_array(), src.to_array(), mass, eps2, [0.0; 6]);
        execute(&pp_stream(), &mut regs);
        let (phi, acc) = p_p(tgt, src, mass, eps2);
        assert!((regs[20] - phi).abs() < 1e-14 * phi.abs());
        assert!((Vec3::new(regs[21], regs[22], regs[23]) - acc).norm() < 1e-14 * acc.norm());
    }

    #[test]
    fn interpreted_pc_matches_fast_kernel() {
        let tgt = Vec3::new(-0.4, 0.7, 1.1);
        let com = Vec3::new(2.0, -1.5, 0.3);
        let (mass, eps2) = (3.0, 0.04);
        let quad = Sym3 {
            m: [0.5, -0.1, 0.2, 0.8, 0.05, 0.3],
        };
        let mut regs = make_regs(tgt.to_array(), com.to_array(), mass, eps2, quad.m);
        execute(&pc_stream(), &mut regs);
        let (phi, acc) = p_c(tgt, com, mass, &quad, eps2);
        assert!(
            (regs[20] - phi).abs() < 1e-13 * phi.abs().max(1e-12),
            "phi {} vs {}",
            regs[20],
            phi
        );
        let got = Vec3::new(regs[21], regs[22], regs[23]);
        assert!(
            (got - acc).norm() < 1e-13 * acc.norm().max(1e-12),
            "acc {got} vs {acc}"
        );
    }

    #[test]
    fn streams_accumulate_across_interactions() {
        // Run the pp stream twice with different sources into the same
        // accumulator registers — kernels accumulate, never overwrite.
        let tgt = Vec3::new(0.0, 0.0, 0.0);
        let s1 = Vec3::new(1.0, 0.0, 0.0);
        let s2 = Vec3::new(0.0, 2.0, 0.0);
        let mut regs = make_regs(tgt.to_array(), s1.to_array(), 1.0, 0.0, [0.0; 6]);
        execute(&pp_stream(), &mut regs);
        regs[4..7].copy_from_slice(&s2.to_array());
        execute(&pp_stream(), &mut regs);
        let (p1, a1) = p_p(tgt, s1, 1.0, 0.0);
        let (p2, a2) = p_p(tgt, s2, 1.0, 0.0);
        assert!((regs[20] - (p1 + p2)).abs() < 1e-14);
        assert!((Vec3::new(regs[21], regs[22], regs[23]) - (a1 + a2)).norm() < 1e-14);
    }
}
