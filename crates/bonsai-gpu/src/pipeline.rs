//! Whole-device model: force kernel plus the non-gravity GPU stages.
//!
//! Table II's single-GPU column for 13M particles on a K20X:
//!
//! | stage | time |
//! |---|---|
//! | SFC sort            | 0.10 s |
//! | tree construction   | 0.11 s |
//! | tree properties     | 0.03 s |
//! | gravity (local)     | 2.45 s |
//!
//! The non-gravity stages are bandwidth-bound streaming passes, so we model
//! them as fixed particle rates calibrated to that column and scaled by
//! memory bandwidth across devices. Gravity goes through the instruction
//! level model in [`crate::kernel`].

use crate::device::DeviceSpec;
use crate::kernel::{KernelModel, KernelVariant};
use bonsai_obs::{SpanId, TraceStore};
use bonsai_tree::InteractionCounts;
use serde::Serialize;

/// Per-device throughput model of every GPU stage of a Bonsai step.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GpuModel {
    /// Device description.
    pub device: DeviceSpec,
    /// Force-kernel model (variant of Fig. 1).
    pub kernel: KernelModel,
    /// SFC key generation + radix sort rate, particles/second.
    pub sort_rate: f64,
    /// Tree construction rate, particles/second.
    pub build_rate: f64,
    /// Multipole (tree properties) rate, particles/second.
    pub props_rate: f64,
}

/// K20X reference rates from Table II, single-GPU column (13M particles).
const K20X_SORT_RATE: f64 = 13.0e6 / 0.10;
const K20X_BUILD_RATE: f64 = 13.0e6 / 0.11;
const K20X_PROPS_RATE: f64 = 13.0e6 / 0.03;
const K20X_BW: f64 = 250.0;

/// Roofline cost of a streaming GPU phase: flops and device-memory bytes
/// charged per particle. These are what turn a phase's particle rate into
/// a point on the roofline — every streaming phase must come out
/// bandwidth-bound (its per-particle byte volume times the calibrated rate
/// stays below the device's memory bandwidth), which is the modelling
/// premise behind scaling the rates with `mem_bw_gbs` across devices.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StreamCost {
    /// Arithmetic charged per particle (key math, prefix sums, kicks).
    pub flops_per_particle: f64,
    /// Device-memory traffic charged per particle, bytes.
    pub bytes_per_particle: f64,
}

/// SFC sort: ~16 flops of 60-bit key arithmetic per particle against
/// ~1200 B of traffic — position reads plus eight counting/scatter radix
/// passes over 64-bit keys and payload indices. At the calibrated
/// 130 M particles/s this is 156 GB/s, 62% of the K20X's 250 GB/s roof.
pub const SORT_COST: StreamCost = StreamCost {
    flops_per_particle: 16.0,
    bytes_per_particle: 1200.0,
};
/// Domain classification: one key compare-walk against the rank
/// boundaries per particle (~20 flops) over a 176-byte key+payload record.
pub const DOMAIN_COST: StreamCost = StreamCost {
    flops_per_particle: 20.0,
    bytes_per_particle: 176.0,
};
/// Tree construction: mask/compact passes and parent linking, ~24 flops
/// and ~800 B per particle (keys re-read per level plus node writes).
pub const BUILD_COST: StreamCost = StreamCost {
    flops_per_particle: 24.0,
    bytes_per_particle: 800.0,
};
/// Multipole properties: COM + quadrupole accumulation up the levels,
/// ~48 flops over ~400 B per particle (body reads plus node read-modify-
/// write). 173 GB/s at the calibrated rate — the most bandwidth-hungry
/// streaming pass, still under the roof.
pub const PROPS_COST: StreamCost = StreamCost {
    flops_per_particle: 48.0,
    bytes_per_particle: 400.0,
};
/// Leapfrog integration: ~12 flops (kick + drift) over three float4
/// streams read and written in place plus the acceleration read — 120 B.
pub const INTEGRATE_COST: StreamCost = StreamCost {
    flops_per_particle: 12.0,
    bytes_per_particle: 120.0,
};

impl GpuModel {
    /// Model for `device` running the given kernel variant; streaming rates
    /// scale with memory bandwidth relative to the K20X calibration point.
    pub fn new(device: DeviceSpec, variant: KernelVariant) -> Self {
        let bw_scale = device.mem_bw_gbs / K20X_BW;
        Self {
            device,
            kernel: KernelModel::new(device, variant),
            sort_rate: K20X_SORT_RATE * bw_scale,
            build_rate: K20X_BUILD_RATE * bw_scale,
            props_rate: K20X_PROPS_RATE * bw_scale,
        }
    }

    /// The production configuration: K20X with the tuned kernel.
    pub fn k20x_tuned() -> Self {
        Self::new(crate::device::K20X, KernelVariant::TreeKeplerTuned)
    }

    /// Simulated seconds for the SFC sort of `n` particles.
    pub fn sort_time(&self, n: u64) -> f64 {
        n as f64 / self.sort_rate
    }

    /// Simulated seconds for tree construction over `n` particles.
    pub fn build_time(&self, n: u64) -> f64 {
        n as f64 / self.build_rate
    }

    /// Simulated seconds for the multipole pass over `n` particles.
    pub fn props_time(&self, n: u64) -> f64 {
        n as f64 / self.props_rate
    }

    /// Simulated seconds for a gravity batch with the configured kernel.
    pub fn gravity_time(&self, counts: InteractionCounts) -> f64 {
        self.kernel.time_for(counts)
    }

    /// Time to move `bytes` across the PCIe link (LET staging to/from host).
    pub fn pcie_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.device.pcie_gbs * 1e9)
    }

    /// Annotate a gravity span with the device model's view of the batch:
    /// modelled occupancy, achieved Gflops, the interaction counts that
    /// were charged, and the roofline coordinates (flops, bytes moved, the
    /// occupancy-limited compute ceiling, the device memory bandwidth).
    /// This is how Table II's "GPU performance" row attaches to the trace a
    /// kernel invocation at a time — `bonsai_obs::profile::roofline` reads
    /// these args back without depending on this crate.
    pub fn annotate_gravity_span(
        &self,
        store: &mut TraceStore,
        id: SpanId,
        counts: InteractionCounts,
    ) {
        store.arg_str(id, "device", self.device.name);
        store.arg_f64(id, "occupancy", self.kernel.occupancy);
        store.arg_f64(id, "gflops", self.kernel.achieved_gflops(counts));
        store.arg_u64(id, "pp", counts.pp);
        store.arg_u64(id, "pc", counts.pc);
        store.arg_u64(id, "flops", counts.flops());
        store.arg_f64(id, "bytes", self.kernel.bytes_for(counts));
        store.arg_f64(id, "ceil_gflops", self.kernel.compute_ceiling_gflops());
        store.arg_f64(id, "bw_gbs", self.device.mem_bw_gbs);
    }

    /// Annotate a streaming-phase span (sort / domain / build / properties /
    /// integrate) with the particle count, the modelled rate it was charged
    /// at, and the roofline coordinates from its [`StreamCost`]. Streaming
    /// passes run at full occupancy — their roofline ceiling is the memory
    /// bandwidth, not the issue rate.
    pub fn annotate_stream_span(
        &self,
        store: &mut TraceStore,
        id: SpanId,
        n: u64,
        rate_per_s: f64,
        cost: StreamCost,
    ) {
        store.arg_str(id, "device", self.device.name);
        store.arg_u64(id, "particles", n);
        store.arg_f64(id, "rate_per_s", rate_per_s);
        store.arg_f64(id, "occupancy", 1.0);
        store.arg_f64(id, "flops", n as f64 * cost.flops_per_particle);
        store.arg_f64(id, "bytes", n as f64 * cost.bytes_per_particle);
        store.arg_f64(id, "ceil_gflops", self.device.peak_sp_gflops());
        store.arg_f64(id, "bw_gbs", self.device.mem_bw_gbs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{C2075, K20X};
    use crate::kernel::paper_mix;

    #[test]
    fn table2_single_gpu_column_reproduced() {
        let m = GpuModel::k20x_tuned();
        let n = 13_000_000u64;
        assert!((m.sort_time(n) - 0.10).abs() < 0.01);
        assert!((m.build_time(n) - 0.11).abs() < 0.01);
        assert!((m.props_time(n) - 0.03).abs() < 0.005);
        // Gravity, single GPU: 2.45 s at the single-GPU interaction mix
        // (1745 pp + 4529 pc per particle, Table II column 1).
        let counts = InteractionCounts {
            pp: 1745 * n,
            pc: 4529 * n,
        };
        let t = m.gravity_time(counts);
        assert!((t - 2.45).abs() / 2.45 < 0.10, "gravity time {t}");
    }

    #[test]
    fn single_gpu_application_performance_matches_table2() {
        // Table II: 1 GPU → 1.77 Tflops kernel, 1.55 Tflops application.
        let m = GpuModel::k20x_tuned();
        let n = 13_000_000u64;
        let counts = InteractionCounts { pp: 1745 * n, pc: 4529 * n };
        let grav = m.gravity_time(counts);
        let total = m.sort_time(n) + m.build_time(n) + m.props_time(n) + grav + 0.1; // + "other"
        let kernel_tflops = counts.flops() as f64 / grav / 1e12;
        let app_tflops = counts.flops() as f64 / total / 1e12;
        assert!((kernel_tflops - 1.77).abs() < 0.2, "kernel {kernel_tflops}");
        assert!((app_tflops - 1.55).abs() < 0.2, "app {app_tflops}");
    }

    #[test]
    fn fermi_rates_scale_with_bandwidth() {
        let k = GpuModel::new(K20X, KernelVariant::TreeKeplerTuned);
        let c = GpuModel::new(C2075, KernelVariant::TreeFermi);
        let ratio = k.sort_rate / c.sort_rate;
        assert!((ratio - 250.0 / 144.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_dominates_the_step() {
        // The pipeline must spend most of its time in the force kernel —
        // the premise of hiding communication behind gravity (§III-B2).
        let m = GpuModel::k20x_tuned();
        let n = 13_000_000u64;
        let grav = m.gravity_time(paper_mix(n));
        let rest = m.sort_time(n) + m.build_time(n) + m.props_time(n);
        assert!(grav > 5.0 * rest);
    }

    #[test]
    fn pcie_transfer_time() {
        let m = GpuModel::k20x_tuned();
        assert!((m.pcie_time(6_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_span_annotation_carries_model_view() {
        use bonsai_obs::{ArgValue, Lane, TraceStore};
        let m = GpuModel::k20x_tuned();
        let counts = InteractionCounts { pp: 1716_000, pc: 6765_000 };
        let mut t = TraceStore::new();
        let id = t.span(0, 1, Lane::Gpu, "local", 0.0, m.gravity_time(counts));
        m.annotate_gravity_span(&mut t, id, counts);
        let args = &t.spans()[0].args;
        let get = |key: &str| args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone());
        assert_eq!(get("pp"), Some(ArgValue::U64(counts.pp)));
        assert_eq!(get("device"), Some(ArgValue::Str("K20X".into())));
        let Some(ArgValue::F64(gflops)) = get("gflops") else {
            panic!("gflops arg missing")
        };
        assert!((gflops - m.kernel.achieved_gflops(counts)).abs() < 1e-9);
        let Some(ArgValue::F64(occ)) = get("occupancy") else {
            panic!("occupancy arg missing")
        };
        assert!(occ > 0.0 && occ <= 1.0);
        // Roofline coordinates: the attained rate stays under the
        // occupancy-scaled compute ceiling carried on the same span.
        let Some(ArgValue::F64(ceil)) = get("ceil_gflops") else {
            panic!("ceil_gflops arg missing")
        };
        let Some(ArgValue::F64(gflops)) = get("gflops") else {
            panic!("gflops arg missing")
        };
        assert!(gflops <= ceil, "attained {gflops} above ceiling {ceil}");
        let Some(ArgValue::F64(bytes)) = get("bytes") else {
            panic!("bytes arg missing")
        };
        assert!((bytes - m.kernel.bytes_for(counts)).abs() < 1e-9);
    }

    #[test]
    fn stream_span_annotation_carries_roofline_coordinates() {
        use bonsai_obs::{ArgValue, Lane, TraceStore};
        let m = GpuModel::k20x_tuned();
        let n = 2_000_000u64;
        let mut t = TraceStore::new();
        let id = t.span(0, 1, Lane::Gpu, "sort", 0.0, m.sort_time(n));
        m.annotate_stream_span(&mut t, id, n, m.sort_rate, SORT_COST);
        let args = &t.spans()[0].args;
        let get = |key: &str| args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone());
        assert_eq!(get("particles"), Some(ArgValue::U64(n)));
        let Some(ArgValue::F64(bytes)) = get("bytes") else {
            panic!("bytes arg missing")
        };
        assert_eq!(bytes, n as f64 * SORT_COST.bytes_per_particle);
        let Some(ArgValue::F64(flops)) = get("flops") else {
            panic!("flops arg missing")
        };
        assert_eq!(flops, n as f64 * SORT_COST.flops_per_particle);
    }

    #[test]
    fn streaming_phases_are_bandwidth_bound_under_the_roof() {
        // Every streaming phase's calibrated rate × per-particle bytes must
        // stay below the device bandwidth (the phase is feasible), and its
        // bandwidth roof must sit below the compute roof (the phase is
        // bandwidth-bound on the roofline). The ratio is bandwidth-invariant
        // because the rates scale with `mem_bw_gbs`.
        for dev in [K20X, C2075] {
            let variant = match dev.arch {
                crate::device::Arch::Kepler => KernelVariant::TreeKeplerTuned,
                crate::device::Arch::Fermi => KernelVariant::TreeFermi,
            };
            let m = GpuModel::new(dev, variant);
            for (name, rate, cost) in [
                ("sort", m.sort_rate, SORT_COST),
                ("build", m.build_rate, BUILD_COST),
                ("props", m.props_rate, PROPS_COST),
                ("integrate", 1.0e9 * dev.mem_bw_gbs / K20X_BW, INTEGRATE_COST),
            ] {
                let gbs = rate * cost.bytes_per_particle / 1e9;
                assert!(
                    gbs < dev.mem_bw_gbs,
                    "{}/{name}: {gbs} GB/s exceeds the {} GB/s roof",
                    dev.name,
                    dev.mem_bw_gbs
                );
                let bw_roof = cost.flops_per_particle / cost.bytes_per_particle * dev.mem_bw_gbs;
                assert!(
                    bw_roof < dev.peak_sp_gflops(),
                    "{}/{name}: bandwidth roof above compute roof",
                    dev.name
                );
                // Attained = rate × flops; never above the bandwidth roof.
                let attained = rate * cost.flops_per_particle / 1e9;
                assert!(attained <= bw_roof * (1.0 + 1e-12), "{name} attained {attained} roof {bw_roof}");
            }
        }
    }
}
