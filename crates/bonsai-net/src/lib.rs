//! # bonsai-net
//!
//! The machines and networks of the paper, as models, plus a real in-process
//! message fabric for the logical ranks of the cluster simulator.
//!
//! * [`machine`] — Table I as data: Piz Daint (Cray XC30, Aries dragonfly,
//!   Xeon E5-2670) and Titan (Cray XK7, Gemini 3D torus, Opteron 6274),
//!   including the host-CPU rates that make LET generation visibly slower on
//!   Titan (§VI-B);
//! * [`cost`] — the interconnect cost model: point-to-point and allgatherv
//!   times from (latency, injection bandwidth, topology congestion), the
//!   bytes→seconds half of the communication rows of Table II;
//! * [`fabric`] — crossbeam-channel message passing between in-process
//!   ranks, used by `bonsai-sim`'s live mode: real bytes flow, the network
//!   model charges simulated time for them;
//! * [`envelope`] — versioned, CRC-64-checksummed framing for every payload
//!   that crosses the fabric, so corruption and truncation are detected
//!   instead of deserialized;
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`]) and
//!   the audit log of injected faults and recovery actions ([`FaultLog`]);
//! * [`flow`] — the per-message flow ledger: every sealed envelope is one
//!   flow whose lifecycle (seal → inject → retransmit → deliver | fallback
//!   | dead) is recorded deterministically, with a conservation invariant
//!   the chaos suites assert;
//! * [`membership`] — coordinator-free epoch-based rank membership: views
//!   as sorted stable node-id sets, join/leave/death proposals gossiped
//!   over the faulty fabric until every live rank holds the same next
//!   view, giving the cluster a dynamic world size;
//! * [`obs`] — bridges into the unified `bonsai-obs` layer: fault-log
//!   entries become COMM-track trace events, link traffic lands in the
//!   metrics registry priced by the cost model;
//! * [`placement`] — §VII's SFC-aware rank placement on the torus.
//!
//! ```
//! use bonsai_net::{NetworkModel, PIZ_DAINT, TITAN};
//!
//! // The Aries dragonfly beats the Gemini torus for dense collectives —
//! // the reason Piz Daint's Table II communication rows are smaller.
//! let daint = NetworkModel::new(PIZ_DAINT);
//! let titan = NetworkModel::new(TITAN);
//! assert!(daint.allgatherv_time(4096, 12_000) < titan.allgatherv_time(4096, 12_000));
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod envelope;
pub mod fabric;
pub mod fault;
pub mod flow;
pub mod machine;
pub mod membership;
pub mod obs;
pub mod placement;

pub use cost::NetworkModel;
pub use envelope::{Envelope, EnvelopeError};
pub use fabric::{Endpoint, Fabric, Message, MsgKind};
pub use fault::{
    FaultEvent, FaultKind, FaultLog, FaultPlan, FaultyEndpoint, Injection, RecoveryAction,
    RecoveryEvent, SharedFaultLog,
};
pub use flow::{FlowConservation, FlowLedger, FlowOutcome, FlowRecord, SharedFlowLedger};
pub use machine::{MachineSpec, Topology, PIZ_DAINT, TITAN};
pub use membership::{Convergence, MembershipEvent, MembershipLog, View, ViewChange};
pub use placement::{Placement, PlacementStrategy};
