//! Bridges from the network layer into the unified observability model
//! (`bonsai-obs`): fault-log entries become trace events on the COMM track,
//! and measured link traffic lands in the metrics registry priced by the
//! interconnect cost model.

use crate::cost::NetworkModel;
use crate::fault::FaultLog;
use bonsai_obs::{Lane, MetricsRegistry, TraceStore};

/// Spacing between consecutive fault events anchored at the same instant,
/// so Perfetto renders them in log order instead of stacked.
const EVENT_SPACING: f64 = 1e-6;

/// Record every entry of `log` as instant events on the COMM lanes of the
/// involved ranks. `at_for_rank(rank)` gives the anchor time (typically the
/// rank's communication-window start on the global trace clock); events are
/// offset by a microsecond each to preserve log order.
pub fn record_fault_log(
    log: &FaultLog,
    store: &mut TraceStore,
    step: u64,
    at_for_rank: &dyn Fn(usize) -> f64,
) {
    for (i, e) in log.injected.iter().enumerate() {
        let at = at_for_rank(e.to) + i as f64 * EVENT_SPACING;
        let ev = store.instant(
            e.to as u32,
            step,
            Lane::Comm,
            format!("inject:{}", e.fault),
            at,
        );
        ev.args.push(("from", bonsai_obs::ArgValue::U64(e.from as u64)));
        ev.args.push(("to", bonsai_obs::ArgValue::U64(e.to as u64)));
        ev.args
            .push(("kind", bonsai_obs::ArgValue::Str(format!("{:?}", e.kind))));
        ev.args
            .push(("attempt", bonsai_obs::ArgValue::U64(e.attempt as u64)));
    }
    for (i, e) in log.recoveries.iter().enumerate() {
        let at = at_for_rank(e.rank) + (log.injected.len() + i) as f64 * EVENT_SPACING;
        let ev = store.instant(
            e.rank as u32,
            step,
            Lane::Comm,
            format!("recover:{}", e.action),
            at,
        );
        if let Some(p) = e.peer {
            ev.args.push(("peer", bonsai_obs::ArgValue::U64(p as u64)));
        }
        if let Some(k) = e.kind {
            ev.args
                .push(("kind", bonsai_obs::ArgValue::Str(format!("{k:?}"))));
        }
        ev.args
            .push(("detail", bonsai_obs::ArgValue::Str(e.detail.clone())));
    }
}

impl NetworkModel {
    /// Record one rank's traffic of a given `kind` ("boundary", "let",
    /// "exchange", "retransmit") into the registry: a byte counter per
    /// (kind, rank), a machine-wide byte counter per kind, and the modelled
    /// point-to-point latency for the volume as a histogram observation.
    pub fn observe_link(
        &self,
        reg: &mut MetricsRegistry,
        kind: &str,
        rank: usize,
        bytes: u64,
    ) {
        if bytes == 0 {
            return;
        }
        let rank_s = rank.to_string();
        reg.counter_add(
            "bonsai_net_bytes_total",
            &[("kind", kind), ("rank", &rank_s)],
            bytes,
        );
        reg.counter_add("bonsai_net_kind_bytes_total", &[("kind", kind)], bytes);
        reg.histogram_observe(
            "bonsai_net_link_seconds",
            &[("kind", kind)],
            self.p2p_time(bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::MsgKind;
    use crate::fault::{FaultEvent, FaultKind, RecoveryAction, RecoveryEvent};
    use crate::machine::PIZ_DAINT;

    fn sample_log() -> FaultLog {
        FaultLog {
            injected: vec![FaultEvent {
                epoch: 3,
                from: 0,
                to: 1,
                kind: MsgKind::Let,
                fault: FaultKind::Drop,
                attempt: 0,
            }],
            recoveries: vec![RecoveryEvent {
                epoch: 3,
                rank: 1,
                peer: Some(0),
                kind: Some(MsgKind::Let),
                action: RecoveryAction::BoundaryFallback,
                detail: "dedicated LET lost".to_string(),
            }],
        }
    }

    #[test]
    fn fault_log_lands_on_comm_track() {
        let mut store = TraceStore::new();
        record_fault_log(&sample_log(), &mut store, 3, &|_r| 1.5);
        assert_eq!(store.instants().len(), 2);
        let inj = &store.instants()[0];
        assert_eq!(inj.rank, 1);
        assert_eq!(inj.lane, Lane::Comm);
        assert_eq!(inj.name, "inject:drop");
        assert!(inj.at >= 1.5);
        let rec = &store.instants()[1];
        assert_eq!(rec.name, "recover:boundary-fallback");
        assert!(rec.at > inj.at, "log order preserved on the timeline");
    }

    #[test]
    fn observe_link_prices_and_counts() {
        let net = NetworkModel::new(PIZ_DAINT);
        let mut reg = MetricsRegistry::new();
        net.observe_link(&mut reg, "let", 2, 10_000);
        net.observe_link(&mut reg, "let", 2, 5_000);
        net.observe_link(&mut reg, "boundary", 0, 100);
        net.observe_link(&mut reg, "boundary", 0, 0); // no-op
        assert_eq!(
            reg.counter("bonsai_net_bytes_total", &[("kind", "let"), ("rank", "2")]),
            15_000
        );
        assert_eq!(
            reg.counter("bonsai_net_kind_bytes_total", &[("kind", "boundary")]),
            100
        );
        let h = reg
            .histogram("bonsai_net_link_seconds", &[("kind", "let")])
            .unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.sum() > 0.0);
    }
}
