//! Bridges from the network layer into the unified observability model
//! (`bonsai-obs`): fault-log entries become trace events on the COMM track
//! anchored at their flow's modeled wire times, and measured link traffic
//! lands in the metrics registry priced by the interconnect cost model.

use crate::cost::NetworkModel;
use crate::fault::{FaultLog, RecoveryAction};
use crate::flow::{FlowLedger, FlowOutcome, FlowRecord};
use bonsai_obs::{Lane, MetricsRegistry, TraceStore};

/// Models where a flow's frames sit on the trace clock.
///
/// The fabric itself is instantaneous (in-process channels); what the trace
/// shows is the *priced* wire time: attempt `k` of a flow leaves its sender
/// `k` retransmit-timeouts after the sender's communication window opens,
/// and arrives one modeled point-to-point latency later. The retransmit
/// timeout is two point-to-point times — a request/ack round trip — so
/// every retransmission chain is strictly ordered on the timeline.
pub struct FlowClock<'a> {
    net: &'a NetworkModel,
}

impl<'a> FlowClock<'a> {
    /// A clock pricing frames with `net`.
    pub fn new(net: &'a NetworkModel) -> Self {
        Self { net }
    }

    /// Modeled retransmit timeout for a payload of `bytes`.
    pub fn rto(&self, bytes: usize) -> f64 {
        2.0 * self.net.p2p_time(bytes as u64)
    }

    /// When attempt `k` of `r` leaves the sender, given the sender's
    /// communication-window start `base_from`.
    pub fn send_at(&self, r: &FlowRecord, attempt: u32, base_from: f64) -> f64 {
        base_from + attempt as f64 * self.rto(r.bytes)
    }

    /// When the delivering frame of `r` lands, if it was delivered.
    pub fn deliver_at(&self, r: &FlowRecord, base_from: f64) -> Option<f64> {
        match r.outcome {
            FlowOutcome::Delivered { attempt } => {
                Some(self.send_at(r, attempt, base_from) + self.net.p2p_time(r.bytes as u64))
            }
            _ => None,
        }
    }

    /// When `r` was resolved — delivery time, or for fallback flows the
    /// moment the receiver gave up waiting (after every attempt's timeout).
    pub fn resolve_at(&self, r: &FlowRecord, base_from: f64, base_to: f64) -> Option<f64> {
        match r.outcome {
            FlowOutcome::Delivered { .. } => self.deliver_at(r, base_from),
            FlowOutcome::Fallback => Some(
                base_from.max(base_to)
                    + r.attempts as f64 * self.rto(r.bytes)
                    + self.net.p2p_time(r.bytes as u64),
            ),
            _ => None,
        }
    }
}

/// Record every entry of `log` as instant events on the COMM lanes of the
/// involved ranks, anchored at the modeled wire time of the flow each event
/// belongs to (injection: the faulted attempt's send instant; recovery: the
/// flow's resolution instant) and carrying the flow id as an arg, so
/// Perfetto log order is causal. `at_for_rank(rank)` gives each rank's
/// communication-window start on the global trace clock; events without a
/// flow (crash handling, checkpoint restores, view changes) anchor there.
pub fn record_fault_log(
    log: &FaultLog,
    flows: &FlowLedger,
    net: &NetworkModel,
    store: &mut TraceStore,
    step: u64,
    at_for_rank: &dyn Fn(usize) -> f64,
) {
    let clock = FlowClock::new(net);
    // Injections and ledger `injected` entries were appended in the same
    // driver order, so the k-th fault event on a coordinate matches the
    // k-th ledger injection there: walk each flow's injection list with a
    // per-flow cursor.
    let mut cursor = vec![0usize; flows.records().len()];
    for e in &log.injected {
        let hit = flows.records().iter().find(|r| {
            r.epoch == e.epoch
                && r.from == e.from
                && r.to == e.to
                && r.kind == e.kind
                && cursor[(r.id - 1) as usize] < r.injected.len()
                && r.injected[cursor[(r.id - 1) as usize]] == (e.attempt, e.fault)
        });
        let (at, flow_id) = match hit {
            Some(r) => {
                cursor[(r.id - 1) as usize] += 1;
                (clock.send_at(r, e.attempt, at_for_rank(e.from)), r.id)
            }
            None => (at_for_rank(e.to), 0),
        };
        let ev = store.instant(
            e.to as u32,
            step,
            Lane::Comm,
            format!("inject:{}", e.fault),
            at,
        );
        ev.args.push(("from", bonsai_obs::ArgValue::U64(e.from as u64)));
        ev.args.push(("to", bonsai_obs::ArgValue::U64(e.to as u64)));
        ev.args
            .push(("kind", bonsai_obs::ArgValue::Str(format!("{:?}", e.kind))));
        ev.args
            .push(("attempt", bonsai_obs::ArgValue::U64(e.attempt as u64)));
        if flow_id != 0 {
            ev.args.push(("flow", bonsai_obs::ArgValue::U64(flow_id)));
        }
    }
    // The k-th Retransmit recovery on a coordinate is the send of attempt
    // k; other flow-bound recoveries anchor at the flow's resolution.
    let mut retries: std::collections::BTreeMap<(u64, usize, usize, u8), u32> =
        std::collections::BTreeMap::new();
    for e in &log.recoveries {
        let flow = e.peer.and_then(|peer| {
            e.kind.and_then(|kind| {
                flows
                    .records()
                    .iter()
                    .rev()
                    .find(|r| r.epoch == e.epoch && r.from == peer && r.to == e.rank && r.kind == kind)
            })
        });
        let at = match flow {
            Some(r) => match e.action {
                RecoveryAction::Retransmit => {
                    let key = (e.epoch, r.from, r.to, crate::envelope::kind_code(r.kind));
                    let k = retries.entry(key).or_insert(0);
                    *k += 1;
                    clock.send_at(r, *k, at_for_rank(r.from))
                }
                _ => clock
                    .resolve_at(r, at_for_rank(r.from), at_for_rank(r.to))
                    .unwrap_or_else(|| at_for_rank(e.rank)),
            },
            None => at_for_rank(e.rank),
        };
        let ev = store.instant(
            e.rank as u32,
            step,
            Lane::Comm,
            format!("recover:{}", e.action),
            at,
        );
        if let Some(p) = e.peer {
            ev.args.push(("peer", bonsai_obs::ArgValue::U64(p as u64)));
        }
        if let Some(k) = e.kind {
            ev.args
                .push(("kind", bonsai_obs::ArgValue::Str(format!("{k:?}"))));
        }
        if let Some(r) = flow {
            ev.args.push(("flow", bonsai_obs::ArgValue::U64(r.id)));
        }
        ev.args
            .push(("detail", bonsai_obs::ArgValue::Str(e.detail.clone())));
    }
}

impl NetworkModel {
    /// Record one rank's traffic of a given `kind` ("boundary", "let",
    /// "exchange", "retransmit") into the registry: a byte counter per
    /// (kind, rank), a machine-wide byte counter per kind, and the modelled
    /// point-to-point latency for the volume as a histogram observation.
    pub fn observe_link(
        &self,
        reg: &mut MetricsRegistry,
        kind: &str,
        rank: usize,
        bytes: u64,
    ) {
        if bytes == 0 {
            return;
        }
        let rank_s = rank.to_string();
        reg.counter_add(
            "bonsai_net_bytes_total",
            &[("kind", kind), ("rank", &rank_s)],
            bytes,
        );
        reg.counter_add("bonsai_net_kind_bytes_total", &[("kind", kind)], bytes);
        reg.histogram_observe(
            "bonsai_net_link_seconds",
            &[("kind", kind)],
            self.p2p_time(bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::MsgKind;
    use crate::fault::{FaultEvent, FaultKind, RecoveryAction, RecoveryEvent};
    use crate::machine::PIZ_DAINT;

    fn sample_log() -> FaultLog {
        FaultLog {
            injected: vec![FaultEvent {
                epoch: 3,
                from: 0,
                to: 1,
                kind: MsgKind::Let,
                fault: FaultKind::Drop,
                attempt: 0,
            }],
            recoveries: vec![RecoveryEvent {
                epoch: 3,
                rank: 1,
                peer: Some(0),
                kind: Some(MsgKind::Let),
                action: RecoveryAction::BoundaryFallback,
                detail: "dedicated LET lost".to_string(),
            }],
        }
    }

    fn sample_ledger() -> FlowLedger {
        let mut l = FlowLedger::new();
        let id = l.seal(3, 0, 1, MsgKind::Let, 2048);
        l.inject(id, 0, FaultKind::Drop);
        l.retransmit_latest(3, 0, 1, MsgKind::Let, 2048);
        l.fallback_pending(3, 0, 1, MsgKind::Let);
        l
    }

    #[test]
    fn fault_log_lands_on_comm_track_with_flow_ids() {
        let net = NetworkModel::new(PIZ_DAINT);
        let mut store = TraceStore::new();
        record_fault_log(
            &sample_log(),
            &sample_ledger(),
            &net,
            &mut store,
            3,
            &|_r| 1.5,
        );
        assert_eq!(store.instants().len(), 2);
        let inj = &store.instants()[0];
        assert_eq!(inj.rank, 1);
        assert_eq!(inj.lane, Lane::Comm);
        assert_eq!(inj.name, "inject:drop");
        // Attempt 0 leaves right at the sender's window start.
        assert_eq!(inj.at, 1.5);
        assert!(
            inj.args
                .iter()
                .any(|(k, v)| *k == "flow" && *v == bonsai_obs::ArgValue::U64(1)),
            "injection carries its flow id"
        );
        let rec = &store.instants()[1];
        assert_eq!(rec.name, "recover:boundary-fallback");
        assert!(
            rec.at > inj.at,
            "fallback resolves after the faulted send: {} vs {}",
            rec.at,
            inj.at
        );
        assert!(rec
            .args
            .iter()
            .any(|(k, v)| *k == "flow" && *v == bonsai_obs::ArgValue::U64(1)));
    }

    #[test]
    fn retransmit_chain_is_causally_ordered() {
        let net = NetworkModel::new(PIZ_DAINT);
        let mut ledger = FlowLedger::new();
        let id = ledger.seal(4, 2, 0, MsgKind::Control, 64);
        ledger.inject(id, 0, FaultKind::Drop);
        ledger.retransmit_latest(4, 2, 0, MsgKind::Control, 64);
        ledger.deliver(id, 1);
        let log = FaultLog {
            injected: vec![FaultEvent {
                epoch: 4,
                from: 2,
                to: 0,
                kind: MsgKind::Control,
                fault: FaultKind::Drop,
                attempt: 0,
            }],
            recoveries: vec![RecoveryEvent {
                epoch: 4,
                rank: 0,
                peer: Some(2),
                kind: Some(MsgKind::Control),
                action: RecoveryAction::Retransmit,
                detail: "attempt 1".to_string(),
            }],
        };
        let mut store = TraceStore::new();
        record_fault_log(&log, &ledger, &net, &mut store, 4, &|_r| 0.25);
        let inj = &store.instants()[0];
        let rec = &store.instants()[1];
        // The retransmit send sits exactly one RTO after the dropped send.
        let clock = FlowClock::new(&net);
        assert!((rec.at - inj.at - clock.rto(64)).abs() < 1e-15);
    }

    #[test]
    fn events_without_a_flow_anchor_at_the_rank_window() {
        let net = NetworkModel::new(PIZ_DAINT);
        let log = FaultLog {
            injected: vec![],
            recoveries: vec![RecoveryEvent {
                epoch: 9,
                rank: 2,
                peer: None,
                kind: None,
                action: RecoveryAction::RestoreCheckpoint,
                detail: "rank 3 crashed".to_string(),
            }],
        };
        let mut store = TraceStore::new();
        record_fault_log(&log, &FlowLedger::new(), &net, &mut store, 9, &|r| {
            r as f64
        });
        assert_eq!(store.instants()[0].at, 2.0);
        assert!(!store.instants()[0].args.iter().any(|(k, _)| *k == "flow"));
    }

    #[test]
    fn observe_link_prices_and_counts() {
        let net = NetworkModel::new(PIZ_DAINT);
        let mut reg = MetricsRegistry::new();
        net.observe_link(&mut reg, "let", 2, 10_000);
        net.observe_link(&mut reg, "let", 2, 5_000);
        net.observe_link(&mut reg, "boundary", 0, 100);
        net.observe_link(&mut reg, "boundary", 0, 0); // no-op
        assert_eq!(
            reg.counter("bonsai_net_bytes_total", &[("kind", "let"), ("rank", "2")]),
            15_000
        );
        assert_eq!(
            reg.counter("bonsai_net_kind_bytes_total", &[("kind", "boundary")]),
            100
        );
        let h = reg
            .histogram("bonsai_net_link_seconds", &[("kind", "let")])
            .unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.sum() > 0.0);
    }
}
