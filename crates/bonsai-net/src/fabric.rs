//! In-process message fabric for logical ranks.
//!
//! The cluster simulator runs each logical rank on its own thread in "live"
//! mode; ranks exchange real serialized bytes over crossbeam channels. The
//! fabric provides the two primitives Bonsai uses (§III-B2): an
//! `MPI_Allgatherv`-style collective for boundary trees, and tagged
//! point-to-point sends for particle exchange and LETs. Channels are FIFO
//! per (sender, receiver) pair, which — together with the deterministic
//! per-step communication pattern — is all the ordering the algorithm needs.
//!
//! Ranks are *not* barrier-synchronized between phases: a fast rank may
//! finish the boundary allgather and already be sending dedicated LETs
//! while a slow rank is still collecting boundaries. Phased receives
//! therefore defer messages of other kinds to a pending queue instead of
//! treating them as protocol violations; the deferred frames are delivered
//! by the next receive that asks for their kind, so no message is ever
//! lost to phase skew.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::RefCell;
use std::collections::VecDeque;

/// What a message carries (drives receive-side dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Serialized boundary tree (allgather phase).
    Boundary,
    /// Migrating particles (exchange phase).
    Particles,
    /// A dedicated Local Essential Tree.
    Let,
    /// Small control/reduction payloads (bounding boxes, samples, cuts).
    Control,
    /// Membership view proposals (join/leave/death gossip rounds).
    View,
}

/// A tagged message between ranks.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// Payload semantics.
    pub kind: MsgKind,
    /// Serialized payload.
    pub payload: Bytes,
}

/// One rank's handle into the fabric.
pub struct Endpoint {
    /// This rank's id.
    pub rank: usize,
    /// Number of ranks.
    pub world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages that arrived ahead of their phase (e.g. a LET while this
    /// rank was still collecting boundaries), kept for the receive that
    /// asks for their kind.
    pending: RefCell<VecDeque<Message>>,
}

/// Construct the fully connected fabric.
pub struct Fabric;

impl Fabric {
    /// Create `p` endpoints, one per logical rank.
    pub fn new(p: usize) -> Vec<Endpoint> {
        assert!(p > 0);
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(rank, receiver)| Endpoint {
                rank,
                world: p,
                senders: txs.clone(),
                receiver,
                pending: RefCell::new(VecDeque::new()),
            })
            .collect()
    }
}

impl Endpoint {
    /// Send `payload` to rank `to`.
    pub fn send(&self, to: usize, kind: MsgKind, payload: Bytes) {
        let msg = Message {
            from: self.rank,
            kind,
            payload,
        };
        self.senders[to].send(msg).expect("receiver dropped");
    }

    /// Blocking receive of the next message (deferred frames first).
    pub fn recv(&self) -> Message {
        if let Some(m) = self.pending.borrow_mut().pop_front() {
            return m;
        }
        self.receiver.recv().expect("fabric disconnected")
    }

    /// Non-blocking receive: the next message if one is queued (deferred
    /// frames first).
    pub fn try_recv(&self) -> Option<Message> {
        if let Some(m) = self.pending.borrow_mut().pop_front() {
            return Some(m);
        }
        self.receiver.try_recv().ok()
    }

    /// Blocking receive of the next message of `kind`. Messages of other
    /// kinds were sent by ranks already past this phase; they are deferred
    /// (in arrival order) for the receive that asks for them.
    pub fn recv_of(&self, kind: MsgKind) -> Message {
        let pos = self
            .pending
            .borrow()
            .iter()
            .position(|m| m.kind == kind);
        if let Some(pos) = pos {
            return self.pending.borrow_mut().remove(pos).expect("pending frame");
        }
        loop {
            let m = self.receiver.recv().expect("fabric disconnected");
            if m.kind == kind {
                return m;
            }
            self.pending.borrow_mut().push_back(m);
        }
    }

    /// Receive exactly `n` messages of `kind`, returning them indexed by
    /// sender. Messages of other kinds are deferred, not dropped.
    pub fn recv_n_of(&self, kind: MsgKind, n: usize) -> Vec<(usize, Bytes)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let m = self.recv_of(kind);
            out.push((m.from, m.payload));
        }
        out
    }

    /// Allgather: contribute `payload`, receive everyone's contribution
    /// (own included), indexed by rank.
    pub fn allgather(&self, kind: MsgKind, payload: Bytes) -> Vec<Bytes> {
        for r in 0..self.world {
            if r != self.rank {
                self.send(r, kind, payload.clone());
            }
        }
        let mut slots: Vec<Option<Bytes>> = vec![None; self.world];
        slots[self.rank] = Some(payload);
        let mut missing = self.world - 1;
        while missing > 0 {
            let m = self.recv_of(kind);
            assert!(slots[m.from].is_none(), "duplicate allgather contribution");
            slots[m.from] = Some(m.payload);
            missing -= 1;
        }
        slots.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ring_pass() {
        let eps = Fabric::new(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let next = (ep.rank + 1) % ep.world;
                    ep.send(next, MsgKind::Control, Bytes::from(vec![ep.rank as u8]));
                    let m = ep.recv();
                    assert_eq!(m.kind, MsgKind::Control);
                    assert_eq!(m.from, (ep.rank + ep.world - 1) % ep.world);
                    assert_eq!(m.payload[0] as usize, m.from);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn allgather_collects_everyone() {
        let eps = Fabric::new(6);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let mine = Bytes::from(format!("rank-{}", ep.rank));
                    let all = ep.allgather(MsgKind::Boundary, mine);
                    assert_eq!(all.len(), 6);
                    for (r, b) in all.iter().enumerate() {
                        assert_eq!(&b[..], format!("rank-{r}").as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recv_n_of_indexes_by_sender() {
        let mut eps = Fabric::new(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.send(0, MsgKind::Let, Bytes::from_static(b"a"));
        e2.send(0, MsgKind::Let, Bytes::from_static(b"b"));
        let got = e0.recv_n_of(MsgKind::Let, 2);
        let mut from: Vec<usize> = got.iter().map(|(f, _)| *f).collect();
        from.sort_unstable();
        assert_eq!(from, vec![1, 2]);
    }

    #[test]
    fn early_next_phase_messages_are_deferred() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        // Rank 1 races ahead: its dedicated LET lands before its boundary.
        b.send(0, MsgKind::Let, Bytes::from_static(b"early-let"));
        b.send(0, MsgKind::Boundary, Bytes::from_static(b"boundary"));
        let all = a.allgather(MsgKind::Boundary, Bytes::from_static(b"mine"));
        assert_eq!(&all[1][..], b"boundary");
        // The early LET was deferred, not lost.
        let lets = a.recv_n_of(MsgKind::Let, 1);
        assert_eq!(lets[0].0, 1);
        assert_eq!(&lets[0].1[..], b"early-let");
    }

    #[test]
    fn single_rank_allgather() {
        let mut eps = Fabric::new(1);
        let e = eps.pop().unwrap();
        let all = e.allgather(MsgKind::Boundary, Bytes::from_static(b"x"));
        assert_eq!(all.len(), 1);
        assert_eq!(&all[0][..], b"x");
    }
}
