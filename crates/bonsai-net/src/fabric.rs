//! In-process message fabric for logical ranks.
//!
//! The cluster simulator runs each logical rank on its own thread in "live"
//! mode; ranks exchange real serialized bytes over crossbeam channels. The
//! fabric provides the two primitives Bonsai uses (§III-B2): an
//! `MPI_Allgatherv`-style collective for boundary trees, and tagged
//! point-to-point sends for particle exchange and LETs. Channels are FIFO
//! per (sender, receiver) pair, which — together with the deterministic
//! per-step communication pattern — is all the ordering the algorithm needs.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// What a message carries (drives receive-side dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Serialized boundary tree (allgather phase).
    Boundary,
    /// Migrating particles (exchange phase).
    Particles,
    /// A dedicated Local Essential Tree.
    Let,
    /// Small control/reduction payloads (bounding boxes, samples, cuts).
    Control,
}

/// A tagged message between ranks.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// Payload semantics.
    pub kind: MsgKind,
    /// Serialized payload.
    pub payload: Bytes,
}

/// One rank's handle into the fabric.
pub struct Endpoint {
    /// This rank's id.
    pub rank: usize,
    /// Number of ranks.
    pub world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
}

/// Construct the fully connected fabric.
pub struct Fabric;

impl Fabric {
    /// Create `p` endpoints, one per logical rank.
    pub fn new(p: usize) -> Vec<Endpoint> {
        assert!(p > 0);
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(rank, receiver)| Endpoint {
                rank,
                world: p,
                senders: txs.clone(),
                receiver,
            })
            .collect()
    }
}

impl Endpoint {
    /// Send `payload` to rank `to`.
    pub fn send(&self, to: usize, kind: MsgKind, payload: Bytes) {
        let msg = Message {
            from: self.rank,
            kind,
            payload,
        };
        self.senders[to].send(msg).expect("receiver dropped");
    }

    /// Blocking receive of the next message.
    pub fn recv(&self) -> Message {
        self.receiver.recv().expect("fabric disconnected")
    }

    /// Receive exactly `n` messages of `kind`, returning them indexed by
    /// sender. Messages of other kinds are not expected during a phase and
    /// panic (the per-step protocol is strictly phased).
    pub fn recv_n_of(&self, kind: MsgKind, n: usize) -> Vec<(usize, Bytes)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let m = self.recv();
            assert_eq!(m.kind, kind, "protocol violation: unexpected {:?}", m.kind);
            out.push((m.from, m.payload));
        }
        out
    }

    /// Allgather: contribute `payload`, receive everyone's contribution
    /// (own included), indexed by rank.
    pub fn allgather(&self, kind: MsgKind, payload: Bytes) -> Vec<Bytes> {
        for r in 0..self.world {
            if r != self.rank {
                self.send(r, kind, payload.clone());
            }
        }
        let mut slots: Vec<Option<Bytes>> = vec![None; self.world];
        slots[self.rank] = Some(payload);
        let mut missing = self.world - 1;
        while missing > 0 {
            let m = self.recv();
            assert_eq!(m.kind, kind, "protocol violation in allgather");
            assert!(slots[m.from].is_none(), "duplicate allgather contribution");
            slots[m.from] = Some(m.payload);
            missing -= 1;
        }
        slots.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ring_pass() {
        let eps = Fabric::new(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let next = (ep.rank + 1) % ep.world;
                    ep.send(next, MsgKind::Control, Bytes::from(vec![ep.rank as u8]));
                    let m = ep.recv();
                    assert_eq!(m.kind, MsgKind::Control);
                    assert_eq!(m.from, (ep.rank + ep.world - 1) % ep.world);
                    assert_eq!(m.payload[0] as usize, m.from);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn allgather_collects_everyone() {
        let eps = Fabric::new(6);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let mine = Bytes::from(format!("rank-{}", ep.rank));
                    let all = ep.allgather(MsgKind::Boundary, mine);
                    assert_eq!(all.len(), 6);
                    for (r, b) in all.iter().enumerate() {
                        assert_eq!(&b[..], format!("rank-{r}").as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recv_n_of_indexes_by_sender() {
        let mut eps = Fabric::new(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.send(0, MsgKind::Let, Bytes::from_static(b"a"));
        e2.send(0, MsgKind::Let, Bytes::from_static(b"b"));
        let got = e0.recv_n_of(MsgKind::Let, 2);
        let mut from: Vec<usize> = got.iter().map(|(f, _)| *f).collect();
        from.sort_unstable();
        assert_eq!(from, vec![1, 2]);
    }

    #[test]
    fn single_rank_allgather() {
        let mut eps = Fabric::new(1);
        let e = eps.pop().unwrap();
        let all = e.allgather(MsgKind::Boundary, Bytes::from_static(b"x"));
        assert_eq!(all.len(), 1);
        assert_eq!(&all[0][..], b"x");
    }
}
