//! Versioned, checksummed message framing.
//!
//! Every payload that crosses the fabric is sealed in a fixed-size envelope
//! carrying the message kind, sending rank, step epoch, a unique **flow id**
//! with its attempt sequence number, the payload length and a CRC-64 over
//! header and payload. The receive side validates strictly: truncated
//! frames, bad magic/version, length mismatches and checksum failures are
//! *detected* and reported as [`EnvelopeError`]s instead of being
//! deserialized into garbage, and stale-epoch duplicates can be discarded by
//! comparing [`Envelope::epoch`] against the current step. This is the
//! detection half of the fault-tolerance story; recovery (retransmission,
//! boundary-tree fallback, checkpoint restore) is driven by the cluster on
//! top of these errors. The flow id ties every frame — original or
//! retransmission — back to one logical message in the
//! [`FlowLedger`](crate::flow::FlowLedger), which is what makes per-message
//! causal tracing possible.
//!
//! Version-2 wire layout (little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "BNET"
//!      4     2  version (currently 2)
//!      6     1  kind    (MsgKind code)
//!      7     1  reserved (0)
//!      8     4  from    (sending rank)
//!     12     8  epoch   (step epoch of the sender)
//!     20     8  flow    (ledger-assigned flow id)
//!     28     4  seq     (attempt number: 0 original, 1.. retransmits)
//!     32     4  payload length
//!     36     8  CRC-64/XZ over bytes [0, 36) ++ payload
//!     44     …  payload
//! ```
//!
//! Version-1 frames (the pre-flow layout: payload length at offset 20, CRC
//! over bytes `[0, 24)` at offset 24, payload at 32) are still accepted by
//! [`open`]; they surface with `flow = 0, seq = 0`, the reserved
//! "no recorded flow" id.

use crate::fabric::MsgKind;
use bonsai_util::hash::Crc64;
use bytes::Bytes;

/// Frame magic: `b"BNET"` little-endian.
pub const ENVELOPE_MAGIC: u32 = u32::from_le_bytes(*b"BNET");
/// Current envelope wire version.
pub const ENVELOPE_VERSION: u16 = 2;
/// Fixed header size in bytes for the current (v2) layout.
pub const ENVELOPE_HEADER_LEN: usize = 44;
/// Header size of the legacy v1 layout, still accepted by [`open`].
pub const ENVELOPE_V1_HEADER_LEN: usize = 32;
/// Flow id carried by frames sealed without a ledger (and by all v1
/// frames): "no recorded flow".
pub const NO_FLOW: u64 = 0;

/// Why a received frame was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Frame shorter than the declared layout.
    Truncated {
        /// Bytes required (header, or header + declared payload).
        need: usize,
        /// Bytes actually received.
        have: usize,
    },
    /// First four bytes are not `b"BNET"`.
    BadMagic(u32),
    /// Unknown wire version.
    BadVersion(u16),
    /// Kind byte does not name a [`MsgKind`].
    BadKind(u8),
    /// Declared payload length disagrees with the frame size.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: usize,
        /// Payload bytes actually present.
        available: usize,
    },
    /// CRC-64 over header + payload does not match the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed from the received bytes.
        computed: u64,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            Self::BadMagic(m) => write!(f, "bad magic {m:#010x} (expected \"BNET\")"),
            Self::BadVersion(v) => {
                write!(f, "unsupported envelope version {v} (expected 1 or {ENVELOPE_VERSION})")
            }
            Self::BadKind(k) => write!(f, "unknown message kind code {k}"),
            Self::LengthMismatch {
                declared,
                available,
            } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, frame carries {available}"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Wire code for a [`MsgKind`].
pub fn kind_code(kind: MsgKind) -> u8 {
    match kind {
        MsgKind::Boundary => 0,
        MsgKind::Particles => 1,
        MsgKind::Let => 2,
        MsgKind::Control => 3,
        MsgKind::View => 4,
    }
}

/// Decode a [`MsgKind`] wire code.
pub fn kind_from_code(code: u8) -> Option<MsgKind> {
    match code {
        0 => Some(MsgKind::Boundary),
        1 => Some(MsgKind::Particles),
        2 => Some(MsgKind::Let),
        3 => Some(MsgKind::Control),
        4 => Some(MsgKind::View),
        _ => None,
    }
}

/// A validated, opened envelope borrowing its payload from the frame.
#[derive(Debug, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// Message kind from the header.
    pub kind: MsgKind,
    /// Sending rank from the header.
    pub from: usize,
    /// Sender's step epoch when the frame was sealed.
    pub epoch: u64,
    /// Ledger flow id ([`NO_FLOW`] for v1 frames and untracked sends).
    pub flow: u64,
    /// Attempt number of this frame within its flow (0 = original send).
    pub seq: u32,
    /// The validated payload bytes.
    pub payload: &'a [u8],
}

/// Seal `payload` into a checksummed v2 frame carrying a flow id and an
/// attempt sequence number.
pub fn seal_flow(
    kind: MsgKind,
    from: usize,
    epoch: u64,
    flow: u64,
    seq: u32,
    payload: &[u8],
) -> Bytes {
    let mut frame = Vec::with_capacity(ENVELOPE_HEADER_LEN + payload.len());
    frame.extend_from_slice(&ENVELOPE_MAGIC.to_le_bytes());
    frame.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    frame.push(kind_code(kind));
    frame.push(0); // reserved
    frame.extend_from_slice(&(from as u32).to_le_bytes());
    frame.extend_from_slice(&epoch.to_le_bytes());
    frame.extend_from_slice(&flow.to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = Crc64::new();
    crc.update(&frame[..36]);
    crc.update(payload);
    frame.extend_from_slice(&crc.finish().to_le_bytes());
    frame.extend_from_slice(payload);
    Bytes::from(frame)
}

/// Seal `payload` into a checksummed frame with no recorded flow
/// ([`NO_FLOW`], attempt 0).
pub fn seal(kind: MsgKind, from: usize, epoch: u64, payload: &[u8]) -> Bytes {
    seal_flow(kind, from, epoch, NO_FLOW, 0, payload)
}

/// Seal `payload` into a legacy v1 frame (32-byte header, no flow field).
/// Kept for wire backward-compatibility tests and mixed-version fabrics.
pub fn seal_v1(kind: MsgKind, from: usize, epoch: u64, payload: &[u8]) -> Bytes {
    let mut frame = Vec::with_capacity(ENVELOPE_V1_HEADER_LEN + payload.len());
    frame.extend_from_slice(&ENVELOPE_MAGIC.to_le_bytes());
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.push(kind_code(kind));
    frame.push(0); // reserved
    frame.extend_from_slice(&(from as u32).to_le_bytes());
    frame.extend_from_slice(&epoch.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = Crc64::new();
    crc.update(&frame[..24]);
    crc.update(payload);
    frame.extend_from_slice(&crc.finish().to_le_bytes());
    frame.extend_from_slice(payload);
    Bytes::from(frame)
}

/// Open and strictly validate a frame. Accepts the current v2 layout and
/// the legacy v1 layout (which opens with `flow = NO_FLOW, seq = 0`).
pub fn open(frame: &[u8]) -> Result<Envelope<'_>, EnvelopeError> {
    // The version field sits at the same offset in both layouts, but we
    // need at least the short (v1) header to read it safely.
    if frame.len() < ENVELOPE_V1_HEADER_LEN {
        return Err(EnvelopeError::Truncated {
            need: ENVELOPE_V1_HEADER_LEN,
            have: frame.len(),
        });
    }
    let magic = u32::from_le_bytes(frame[0..4].try_into().unwrap());
    if magic != ENVELOPE_MAGIC {
        return Err(EnvelopeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(frame[4..6].try_into().unwrap());
    let (header_len, flow, seq, len_at, crc_at) = match version {
        1 => (ENVELOPE_V1_HEADER_LEN, NO_FLOW, 0u32, 20usize, 24usize),
        2 => {
            if frame.len() < ENVELOPE_HEADER_LEN {
                return Err(EnvelopeError::Truncated {
                    need: ENVELOPE_HEADER_LEN,
                    have: frame.len(),
                });
            }
            let flow = u64::from_le_bytes(frame[20..28].try_into().unwrap());
            let seq = u32::from_le_bytes(frame[28..32].try_into().unwrap());
            (ENVELOPE_HEADER_LEN, flow, seq, 32usize, 36usize)
        }
        v => return Err(EnvelopeError::BadVersion(v)),
    };
    let kind = kind_from_code(frame[6]).ok_or(EnvelopeError::BadKind(frame[6]))?;
    let from = u32::from_le_bytes(frame[8..12].try_into().unwrap()) as usize;
    let epoch = u64::from_le_bytes(frame[12..20].try_into().unwrap());
    let declared = u32::from_le_bytes(frame[len_at..len_at + 4].try_into().unwrap()) as usize;
    let available = frame.len() - header_len;
    if declared != available {
        // Distinguish a short (torn) frame from a trailing-garbage frame.
        if declared > available {
            return Err(EnvelopeError::Truncated {
                need: header_len + declared,
                have: frame.len(),
            });
        }
        return Err(EnvelopeError::LengthMismatch {
            declared,
            available,
        });
    }
    let payload = &frame[header_len..];
    let stored = u64::from_le_bytes(frame[crc_at..crc_at + 8].try_into().unwrap());
    let mut crc = Crc64::new();
    crc.update(&frame[..crc_at]);
    crc.update(payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(EnvelopeError::ChecksumMismatch { stored, computed });
    }
    Ok(Envelope {
        kind,
        from,
        epoch,
        flow,
        seq,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let frame = seal(MsgKind::Let, 7, 42, b"let tree bytes");
        let env = open(&frame).unwrap();
        assert_eq!(env.kind, MsgKind::Let);
        assert_eq!(env.from, 7);
        assert_eq!(env.epoch, 42);
        assert_eq!(env.flow, NO_FLOW);
        assert_eq!(env.seq, 0);
        assert_eq!(env.payload, b"let tree bytes");
    }

    #[test]
    fn flow_id_round_trips() {
        let frame = seal_flow(MsgKind::Particles, 3, 11, 0xDEAD_BEEF_0042, 5, b"migrants");
        let env = open(&frame).unwrap();
        assert_eq!(env.flow, 0xDEAD_BEEF_0042);
        assert_eq!(env.seq, 5);
        assert_eq!(env.kind, MsgKind::Particles);
        assert_eq!(env.from, 3);
        assert_eq!(env.epoch, 11);
        assert_eq!(env.payload, b"migrants");
    }

    #[test]
    fn v1_frames_still_open() {
        // A legacy 32-byte-header frame opens fine and reports NO_FLOW —
        // old checkpoints / mixed-version peers keep working.
        let frame = seal_v1(MsgKind::Let, 7, 42, b"let tree bytes");
        assert_eq!(u16::from_le_bytes([frame[4], frame[5]]), 1);
        let env = open(&frame).unwrap();
        assert_eq!(env.kind, MsgKind::Let);
        assert_eq!(env.from, 7);
        assert_eq!(env.epoch, 42);
        assert_eq!(env.flow, NO_FLOW);
        assert_eq!(env.seq, 0);
        assert_eq!(env.payload, b"let tree bytes");
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = seal(MsgKind::Control, 0, 1, b"");
        let env = open(&frame).unwrap();
        assert_eq!(env.payload, b"");
        let frame = seal_v1(MsgKind::Control, 0, 1, b"");
        let env = open(&frame).unwrap();
        assert_eq!(env.payload, b"");
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            MsgKind::Boundary,
            MsgKind::Particles,
            MsgKind::Let,
            MsgKind::Control,
            MsgKind::View,
        ] {
            assert_eq!(kind_from_code(kind_code(kind)), Some(kind));
        }
        assert_eq!(kind_from_code(200), None);
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let frame = seal(MsgKind::Boundary, 3, 9, &[0xAA; 100]);
        for cut in [0, 1, 16, 31, 32, 43, 44, 80, frame.len() - 1] {
            let err = open(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, EnvelopeError::Truncated { .. }),
                "cut {cut}: got {err}"
            );
        }
    }

    #[test]
    fn v1_truncation_detected_at_every_cut() {
        let frame = seal_v1(MsgKind::Boundary, 3, 9, &[0xAA; 100]);
        for cut in [0, 1, 16, 31, 32, 80, frame.len() - 1] {
            let err = open(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, EnvelopeError::Truncated { .. }),
                "cut {cut}: got {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_detected() {
        for frame in [
            seal_flow(MsgKind::Particles, 2, 5, 77, 1, b"sixteen particles"),
            seal_v1(MsgKind::Particles, 2, 5, b"sixteen particles"),
        ] {
            for i in 0..frame.len() {
                for bit in 0..8 {
                    let mut bad = frame.to_vec();
                    bad[i] ^= 1 << bit;
                    assert!(
                        open(&bad).is_err(),
                        "flip at byte {i} bit {bit} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut frame = seal(MsgKind::Control, 1, 2, b"abc").to_vec();
        frame.extend_from_slice(b"junk");
        let err = open(&frame).unwrap_err();
        assert!(matches!(err, EnvelopeError::LengthMismatch { .. }), "{err}");
    }

    #[test]
    fn errors_are_descriptive() {
        let err = open(&[0u8; 8]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated") && msg.contains('8'), "{msg}");

        let frame = seal(MsgKind::Let, 0, 0, b"x");
        let mut bad = frame.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let msg = open(&bad).unwrap_err().to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");

        let mut bad = seal(MsgKind::Let, 0, 0, b"x").to_vec();
        bad[4] = 9;
        bad[5] = 0;
        let msg = open(&bad).unwrap_err().to_string();
        assert!(msg.contains("version 9"), "{msg}");
    }
}
