//! Deterministic per-message flow ledger.
//!
//! Every logical message sealed on the fabric — original transmission plus
//! all its retransmissions — is one **flow**. The ledger records the full
//! lifecycle: seal → inject(drop/dup/corrupt/…) → retransmit → deliver |
//! fallback | dead, keyed by a dense flow id that also rides inside the
//! [envelope](crate::envelope) so the receive side can close the loop
//! exactly. All mutations happen on the simulation driver thread in rank
//! order, so ids, record order and outcomes are byte-deterministic per
//! seed — the property the `obs_flows` bench gate relies on.
//!
//! The conservation invariant the chaos suites assert: at any epoch
//! boundary, every sealed flow is **exactly one** of delivered /
//! recovered-by-fallback / dead-by-crash (no flow left `Pending`).

use crate::envelope::NO_FLOW;
use crate::fabric::MsgKind;
use crate::fault::FaultKind;
use std::sync::{Arc, Mutex};

/// Terminal (or not-yet-terminal) state of one flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Sealed, not yet resolved.
    Pending,
    /// The payload was validated and accepted by the receiver.
    Delivered {
        /// Attempt number of the frame that got through (0 = original).
        attempt: u32,
    },
    /// Never delivered; the receiver recovered through a fabric fallback
    /// (e.g. boundary-tree LET substitution).
    Fallback,
    /// Never delivered and no fallback: the epoch was abandoned (crash,
    /// rollback, or a peer declared dead).
    Dead,
}

impl FlowOutcome {
    /// Stable lower-case label (`pending`/`delivered`/`fallback`/`dead`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Pending => "pending",
            Self::Delivered { .. } => "delivered",
            Self::Fallback => "fallback",
            Self::Dead => "dead",
        }
    }
}

/// One logical message and its recorded lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowRecord {
    /// Ledger-assigned id, dense and 1-based (0 is the reserved
    /// [`NO_FLOW`]).
    pub id: u64,
    /// Sender's epoch at seal time.
    pub epoch: u64,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Message kind.
    pub kind: MsgKind,
    /// Payload bytes (pre-envelope).
    pub bytes: usize,
    /// Transmissions attempted so far (1 = original only).
    pub attempts: u32,
    /// Faults injected on this flow, as `(attempt, fault)` pairs.
    pub injected: Vec<(u32, FaultKind)>,
    /// Lifecycle state.
    pub outcome: FlowOutcome,
}

/// Totals for the conservation check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowConservation {
    /// Flows sealed.
    pub sealed: u64,
    /// Flows delivered.
    pub delivered: u64,
    /// Flows resolved by a fabric fallback.
    pub fallback: u64,
    /// Flows dead by crash/abort.
    pub dead: u64,
    /// Flows still pending (must be 0 at epoch boundaries).
    pub pending: u64,
}

impl FlowConservation {
    /// True iff every sealed flow has exactly one terminal outcome.
    pub fn holds(&self) -> bool {
        self.pending == 0 && self.sealed == self.delivered + self.fallback + self.dead
    }
}

/// The append-only flow ledger. See the module docs for the lifecycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowLedger {
    records: Vec<FlowRecord>,
}

impl FlowLedger {
    /// Fresh empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records, in seal order.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Number of flows sealed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been sealed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record a fresh flow; returns its id.
    pub fn seal(&mut self, epoch: u64, from: usize, to: usize, kind: MsgKind, bytes: usize) -> u64 {
        let id = self.records.len() as u64 + 1;
        self.records.push(FlowRecord {
            id,
            epoch,
            from,
            to,
            kind,
            bytes,
            attempts: 1,
            injected: Vec::new(),
            outcome: FlowOutcome::Pending,
        });
        id
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut FlowRecord> {
        if id == NO_FLOW {
            return None;
        }
        self.records.get_mut(id as usize - 1)
    }

    /// A retransmission re-uses the most recent still-pending flow on the
    /// same `(epoch, from, to, kind)` coordinate, bumping its attempt
    /// count; if none is open (shouldn't happen in a well-formed exchange)
    /// a fresh flow is sealed so nothing goes unrecorded.
    pub fn retransmit_latest(
        &mut self,
        epoch: u64,
        from: usize,
        to: usize,
        kind: MsgKind,
        bytes: usize,
    ) -> u64 {
        let found = self
            .records
            .iter_mut()
            .rev()
            .find(|r| {
                r.epoch == epoch
                    && r.from == from
                    && r.to == to
                    && r.kind == kind
                    && r.outcome == FlowOutcome::Pending
            })
            .map(|r| {
                r.attempts += 1;
                r.id
            });
        found.unwrap_or_else(|| self.seal(epoch, from, to, kind, bytes))
    }

    /// Record a fault injected on `flow` at transmission `attempt`.
    pub fn inject(&mut self, flow: u64, attempt: u32, fault: FaultKind) {
        if let Some(r) = self.get_mut(flow) {
            r.injected.push((attempt, fault));
        }
    }

    /// Mark `flow` delivered by the frame with sequence `attempt`. Late
    /// duplicates of an already-resolved flow are ignored.
    pub fn deliver(&mut self, flow: u64, attempt: u32) {
        if let Some(r) = self.get_mut(flow) {
            if r.outcome == FlowOutcome::Pending {
                r.outcome = FlowOutcome::Delivered { attempt };
            }
        }
    }

    /// Mark every still-pending flow on `(epoch, from → to, kind)` as
    /// recovered-by-fallback (the receiver substituted local data).
    pub fn fallback_pending(&mut self, epoch: u64, from: usize, to: usize, kind: MsgKind) {
        for r in &mut self.records {
            if r.epoch == epoch
                && r.from == from
                && r.to == to
                && r.kind == kind
                && r.outcome == FlowOutcome::Pending
            {
                r.outcome = FlowOutcome::Fallback;
            }
        }
    }

    /// Close an abandoned epoch: every flow sealed at `epoch` and still
    /// pending becomes dead-by-crash. Call before a rollback and after a
    /// completed epoch (where it sweeps flows to/from ranks that died).
    pub fn close_epoch_dead(&mut self, epoch: u64) {
        for r in &mut self.records {
            if r.epoch == epoch && r.outcome == FlowOutcome::Pending {
                r.outcome = FlowOutcome::Dead;
            }
        }
    }

    /// Conservation totals over the whole ledger.
    pub fn conservation(&self) -> FlowConservation {
        let mut c = FlowConservation {
            sealed: self.records.len() as u64,
            ..Default::default()
        };
        for r in &self.records {
            match r.outcome {
                FlowOutcome::Pending => c.pending += 1,
                FlowOutcome::Delivered { .. } => c.delivered += 1,
                FlowOutcome::Fallback => c.fallback += 1,
                FlowOutcome::Dead => c.dead += 1,
            }
        }
        c
    }
}

/// A [`FlowLedger`] shared between all of a cluster's endpoints and its
/// recovery machinery.
#[derive(Clone, Default)]
pub struct SharedFlowLedger(Arc<Mutex<FlowLedger>>);

impl SharedFlowLedger {
    /// Fresh empty shared ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`FlowLedger::seal`].
    pub fn seal(&self, epoch: u64, from: usize, to: usize, kind: MsgKind, bytes: usize) -> u64 {
        self.0.lock().unwrap().seal(epoch, from, to, kind, bytes)
    }

    /// See [`FlowLedger::retransmit_latest`].
    pub fn retransmit_latest(
        &self,
        epoch: u64,
        from: usize,
        to: usize,
        kind: MsgKind,
        bytes: usize,
    ) -> u64 {
        self.0
            .lock()
            .unwrap()
            .retransmit_latest(epoch, from, to, kind, bytes)
    }

    /// See [`FlowLedger::inject`].
    pub fn inject(&self, flow: u64, attempt: u32, fault: FaultKind) {
        self.0.lock().unwrap().inject(flow, attempt, fault);
    }

    /// See [`FlowLedger::deliver`].
    pub fn deliver(&self, flow: u64, attempt: u32) {
        self.0.lock().unwrap().deliver(flow, attempt);
    }

    /// See [`FlowLedger::fallback_pending`].
    pub fn fallback_pending(&self, epoch: u64, from: usize, to: usize, kind: MsgKind) {
        self.0
            .lock()
            .unwrap()
            .fallback_pending(epoch, from, to, kind);
    }

    /// See [`FlowLedger::close_epoch_dead`].
    pub fn close_epoch_dead(&self, epoch: u64) {
        self.0.lock().unwrap().close_epoch_dead(epoch);
    }

    /// Copy of the full ledger.
    pub fn snapshot(&self) -> FlowLedger {
        self.0.lock().unwrap().clone()
    }

    /// Number of flows sealed so far.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// True when nothing has been sealed.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }

    /// Conservation totals (see [`FlowLedger::conservation`]).
    pub fn conservation(&self) -> FlowConservation {
        self.0.lock().unwrap().conservation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_delivered_first_try() {
        let mut l = FlowLedger::new();
        let id = l.seal(3, 0, 1, MsgKind::Control, 16);
        assert_eq!(id, 1);
        l.deliver(id, 0);
        let r = &l.records()[0];
        assert_eq!(r.outcome, FlowOutcome::Delivered { attempt: 0 });
        assert_eq!(r.attempts, 1);
        assert!(l.conservation().holds());
    }

    #[test]
    fn retransmit_reuses_latest_pending() {
        let mut l = FlowLedger::new();
        let a = l.seal(3, 0, 1, MsgKind::Let, 100);
        l.inject(a, 0, FaultKind::Drop);
        let b = l.retransmit_latest(3, 0, 1, MsgKind::Let, 100);
        assert_eq!(a, b);
        assert_eq!(l.records()[0].attempts, 2);
        l.deliver(a, 1);
        assert_eq!(l.records()[0].outcome, FlowOutcome::Delivered { attempt: 1 });
        assert!(l.conservation().holds());
    }

    #[test]
    fn retransmit_without_open_flow_seals_fresh() {
        let mut l = FlowLedger::new();
        let a = l.seal(3, 0, 1, MsgKind::Let, 100);
        l.deliver(a, 0);
        let b = l.retransmit_latest(3, 0, 1, MsgKind::Let, 100);
        assert_ne!(a, b);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn same_coordinate_flows_resolve_independently() {
        // Membership gossip seals several View frames per (epoch, from, to)
        // across rounds; the latest-pending rule must not cross wires.
        let mut l = FlowLedger::new();
        let round1 = l.seal(5, 2, 0, MsgKind::View, 40);
        l.deliver(round1, 0);
        let round2 = l.seal(5, 2, 0, MsgKind::View, 44);
        let re = l.retransmit_latest(5, 2, 0, MsgKind::View, 44);
        assert_eq!(re, round2);
        l.deliver(round2, 1);
        assert!(l.conservation().holds());
    }

    #[test]
    fn fallback_and_dead_close_the_books() {
        let mut l = FlowLedger::new();
        let stalled = l.seal(7, 1, 2, MsgKind::Let, 500);
        l.inject(stalled, 0, FaultKind::Stall);
        let doomed = l.seal(7, 3, 2, MsgKind::Control, 8);
        l.fallback_pending(7, 1, 2, MsgKind::Let);
        l.close_epoch_dead(7);
        assert_eq!(l.records()[0].outcome, FlowOutcome::Fallback);
        assert_eq!(l.records()[1].outcome, FlowOutcome::Dead);
        let _ = doomed;
        let c = l.conservation();
        assert!(c.holds());
        assert_eq!((c.delivered, c.fallback, c.dead), (0, 1, 1));
    }

    #[test]
    fn late_duplicate_delivery_ignored() {
        let mut l = FlowLedger::new();
        let id = l.seal(2, 0, 1, MsgKind::Boundary, 64);
        l.deliver(id, 0);
        l.deliver(id, 1); // duplicate copy arrives later
        assert_eq!(l.records()[0].outcome, FlowOutcome::Delivered { attempt: 0 });
    }

    #[test]
    fn no_flow_id_is_inert() {
        let mut l = FlowLedger::new();
        l.deliver(NO_FLOW, 0);
        l.inject(NO_FLOW, 0, FaultKind::Drop);
        assert!(l.is_empty());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(FlowOutcome::Pending.label(), "pending");
        assert_eq!(FlowOutcome::Delivered { attempt: 2 }.label(), "delivered");
        assert_eq!(FlowOutcome::Fallback.label(), "fallback");
        assert_eq!(FlowOutcome::Dead.label(), "dead");
    }
}
