//! Coordinator-free, epoch-based rank membership.
//!
//! The SC14 code assumes a fixed world for the entire run; this module
//! removes that assumption. A [`View`] is a versioned, sorted set of stable
//! *node ids*; a node's rank is its index in the sorted member list, so
//! every process that holds the same view derives the same rank ordering
//! with no coordinator assigning ranks.
//!
//! View changes are agreed by deterministic gossip over the existing
//! envelope/fault fabric. Each live rank starts from the events it knows
//! locally — a join announcement it sponsors, its own graceful leave, a
//! death it detected through missed heartbeats — encoded as a [`Proposal`]:
//! three sets (joined, left, died) amending the current view. Proposals
//! form a join-semilattice under set union, so merging is commutative,
//! associative and idempotent: ranks flood proposals all-to-all (validated
//! frames, bounded retransmission, exactly like the physics payloads) and
//! re-merge until a round changes nothing anywhere. Union-merge of fully
//! exchanged proposals converges in one round; the loop exists so the
//! protocol *self-stabilizes* — any interleaving of duplicated, reordered
//! or delayed view frames the fault plan produces ends in the same view,
//! and a rank that goes silent mid-gossip is reported to the caller, which
//! restarts the round with that rank's death added to the event set.
//!
//! The agreed next view is `(members ∪ joined) ∖ left ∖ died` with the
//! version bumped by one. Versions are monotone; receivers discard view
//! frames from other epochs, so a stale gossip round can never resurrect a
//! departed rank.

use crate::envelope;
use crate::fabric::MsgKind;
use crate::fault::{FaultyEndpoint, RecoveryAction, RecoveryEvent, SharedFaultLog};
use bytes::Bytes;
use std::collections::BTreeSet;

/// A versioned membership view: the sorted stable node ids currently in
/// the cluster. A node's rank is its index in `members`, so a view *is* a
/// rank assignment — identical views imply identical orderings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotone view version; bumped by one per agreed change.
    pub number: u64,
    /// Sorted stable node ids; `members[rank]` is the node holding `rank`.
    pub members: Vec<u64>,
}

impl View {
    /// The bootstrap view: nodes `0..p`, version 0.
    pub fn initial(p: usize) -> Self {
        assert!(p > 0, "a view needs at least one member");
        Self {
            number: 0,
            members: (0..p as u64).collect(),
        }
    }

    /// Number of ranks in this view.
    pub fn world(&self) -> usize {
        self.members.len()
    }

    /// The rank `node` holds in this view, if it is a member.
    pub fn rank_of(&self, node: u64) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: u64) -> bool {
        self.rank_of(node).is_some()
    }

    /// The smallest node id not yet used by this view — the id a newly
    /// admitted node receives. Deterministic, so every member sponsors the
    /// same id for the k-th joiner.
    pub fn next_node_id(&self) -> u64 {
        self.members.last().map_or(0, |&m| m + 1)
    }
}

/// One membership event, as known locally before gossip spreads it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MembershipEvent {
    /// A new node (with this pre-assigned id) asks to join.
    Join(u64),
    /// A member announces its own graceful departure.
    Leave(u64),
    /// A member was detected dead (missed heartbeats / silent in gossip).
    Death(u64),
}

impl MembershipEvent {
    /// The node the event concerns.
    pub fn node(&self) -> u64 {
        match *self {
            MembershipEvent::Join(n) | MembershipEvent::Leave(n) | MembershipEvent::Death(n) => n,
        }
    }
}

impl std::fmt::Display for MembershipEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipEvent::Join(n) => write!(f, "join({n})"),
            MembershipEvent::Leave(n) => write!(f, "leave({n})"),
            MembershipEvent::Death(n) => write!(f, "death({n})"),
        }
    }
}

/// A proposed amendment to a specific view: the sets of nodes joining,
/// leaving gracefully, and detected dead. Proposals merge by set union,
/// which is commutative, associative and idempotent — the property that
/// makes the gossip self-stabilizing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proposal {
    /// The view number this proposal amends.
    pub base: u64,
    /// Nodes joining.
    pub joined: BTreeSet<u64>,
    /// Nodes leaving gracefully.
    pub left: BTreeSet<u64>,
    /// Nodes detected dead.
    pub died: BTreeSet<u64>,
}

impl Proposal {
    /// A proposal amending `view` with the locally-known `events`.
    pub fn from_events(view: &View, events: &[MembershipEvent]) -> Self {
        let mut p = Self {
            base: view.number,
            ..Self::default()
        };
        for e in events {
            match *e {
                MembershipEvent::Join(n) => {
                    assert!(
                        !view.contains(n),
                        "node {n} cannot join view {}: already a member",
                        view.number
                    );
                    p.joined.insert(n);
                }
                MembershipEvent::Leave(n) => {
                    p.left.insert(n);
                }
                MembershipEvent::Death(n) => {
                    p.died.insert(n);
                }
            }
        }
        p
    }

    /// Union-merge `other` into `self`.
    pub fn absorb(&mut self, other: &Proposal) {
        debug_assert_eq!(self.base, other.base, "proposals amend different views");
        self.joined.extend(other.joined.iter().copied());
        self.left.extend(other.left.iter().copied());
        self.died.extend(other.died.iter().copied());
    }

    /// The deduplicated event list this proposal carries, in deterministic
    /// (join, leave, death; ascending node) order. A node both joining and
    /// departing in the same change reports only the departure.
    pub fn events(&self) -> Vec<MembershipEvent> {
        let mut out = Vec::new();
        for &n in &self.joined {
            if !self.left.contains(&n) && !self.died.contains(&n) {
                out.push(MembershipEvent::Join(n));
            }
        }
        for &n in &self.left {
            out.push(MembershipEvent::Leave(n));
        }
        for &n in &self.died {
            if !self.left.contains(&n) {
                out.push(MembershipEvent::Death(n));
            }
        }
        out
    }

    /// Apply the amendment: `(members ∪ joined) ∖ left ∖ died`, version
    /// bumped by one. Panics if the result would be an empty cluster.
    pub fn apply(&self, view: &View) -> View {
        assert_eq!(self.base, view.number, "proposal amends a different view");
        let mut members: BTreeSet<u64> = view.members.iter().copied().collect();
        members.extend(self.joined.iter().copied());
        for n in self.left.iter().chain(self.died.iter()) {
            members.remove(n);
        }
        assert!(
            !members.is_empty(),
            "view change would leave an empty cluster"
        );
        View {
            number: view.number + 1,
            members: members.into_iter().collect(),
        }
    }

    /// Wire encoding: `[base u64][nj u32][nl u32][nd u32][joined…][left…][died…]`,
    /// all little-endian u64 node ids.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(20 + 8 * (self.joined.len() + self.left.len() + self.died.len()));
        v.extend_from_slice(&self.base.to_le_bytes());
        v.extend_from_slice(&(self.joined.len() as u32).to_le_bytes());
        v.extend_from_slice(&(self.left.len() as u32).to_le_bytes());
        v.extend_from_slice(&(self.died.len() as u32).to_le_bytes());
        for set in [&self.joined, &self.left, &self.died] {
            for &n in set {
                v.extend_from_slice(&n.to_le_bytes());
            }
        }
        v
    }

    /// Strict wire decoding; rejects short frames, trailing garbage, and
    /// unsorted or duplicated node lists.
    pub fn from_bytes(d: &[u8]) -> Result<Self, String> {
        if d.len() < 20 {
            return Err(format!("proposal header needs 20 bytes, have {}", d.len()));
        }
        let base = u64::from_le_bytes(d[0..8].try_into().unwrap());
        let nj = u32::from_le_bytes(d[8..12].try_into().unwrap()) as usize;
        let nl = u32::from_le_bytes(d[12..16].try_into().unwrap()) as usize;
        let nd = u32::from_le_bytes(d[16..20].try_into().unwrap()) as usize;
        let want = 20 + 8 * (nj + nl + nd);
        if d.len() != want {
            return Err(format!(
                "proposal declares {} nodes but frame is {} bytes (want {want})",
                nj + nl + nd,
                d.len()
            ));
        }
        let mut off = 20;
        let mut read_set = |count: usize| -> Result<BTreeSet<u64>, String> {
            let mut set = BTreeSet::new();
            let mut prev: Option<u64> = None;
            for _ in 0..count {
                let n = u64::from_le_bytes(d[off..off + 8].try_into().unwrap());
                off += 8;
                if prev.is_some_and(|p| p >= n) {
                    return Err("proposal node list not strictly ascending".to_string());
                }
                prev = Some(n);
                set.insert(n);
            }
            Ok(set)
        };
        let joined = read_set(nj)?;
        let left = read_set(nl)?;
        let died = read_set(nd)?;
        Ok(Self {
            base,
            joined,
            left,
            died,
        })
    }
}

/// The outcome of one converged view change.
#[derive(Clone, Debug)]
pub struct Convergence {
    /// The agreed next view.
    pub view: View,
    /// Gossip rounds until no rank's proposal changed (≥ 1).
    pub rounds: usize,
    /// The deduplicated events the change carries.
    pub events: Vec<MembershipEvent>,
}

/// Run the gossip protocol to agreement over the (possibly faulty) fabric.
///
/// `live[r]` masks ranks known dead before the round starts; dead ranks
/// send nothing and nothing is expected from them. `events_at[r]` is what
/// rank `r` knows locally before gossip — the protocol's job is to spread
/// exactly that information everywhere. Frames cross the fabric as
/// [`MsgKind::View`] envelopes subject to the fault plan, with the same
/// validation/retransmission discipline as physics payloads.
///
/// Returns `Err(rank)` if a live rank stayed silent through every
/// retransmission window — the caller should declare it dead and re-run
/// with its `Death` added to the events.
pub fn converge(
    endpoints: &mut [FaultyEndpoint],
    log: &SharedFaultLog,
    live: &[bool],
    epoch: u64,
    current: &View,
    events_at: &[Vec<MembershipEvent>],
    max_retries: u32,
) -> Result<Convergence, usize> {
    let p = endpoints.len();
    assert_eq!(live.len(), p);
    assert_eq!(events_at.len(), p);
    let alive: Vec<usize> = (0..p).filter(|&r| live[r]).collect();
    assert!(!alive.is_empty(), "no live ranks to run membership gossip");

    let mut props: Vec<Proposal> = (0..p)
        .map(|r| Proposal::from_events(current, &events_at[r]))
        .collect();
    let mut rounds = 0usize;
    if alive.len() > 1 {
        loop {
            rounds += 1;
            assert!(
                rounds <= p + 2,
                "membership gossip failed to stabilize in {rounds} rounds"
            );
            let got = exchange_proposals(endpoints, log, &alive, epoch, current.number, &props, max_retries)?;
            let mut changed = false;
            for (i, &to) in alive.iter().enumerate() {
                let mut merged = props[to].clone();
                for (j, _) in alive.iter().enumerate() {
                    if let Some(theirs) = &got[i][j] {
                        merged.absorb(theirs);
                    }
                }
                if merged != props[to] {
                    props[to] = merged;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let agreed = &props[alive[0]];
        for &r in &alive[1..] {
            assert_eq!(
                props[r], *agreed,
                "membership gossip stabilized without agreement"
            );
        }
    } else {
        rounds = 1;
    }
    let agreed = props[alive[0]].clone();
    Ok(Convergence {
        view: agreed.apply(current),
        rounds,
        events: agreed.events(),
    })
}

/// One all-to-all proposal flood among `alive` ranks with validated
/// receive and bounded retransmission. `got[i][j]` is what `alive[i]`
/// accepted from `alive[j]` (`None` on the diagonal). `Err(rank)` when a
/// sender stayed silent past the final retry.
fn exchange_proposals(
    endpoints: &mut [FaultyEndpoint],
    log: &SharedFaultLog,
    alive: &[usize],
    epoch: u64,
    base: u64,
    props: &[Proposal],
    max_retries: u32,
) -> Result<Vec<Vec<Option<Proposal>>>, usize> {
    let k = alive.len();
    let payloads: Vec<Bytes> = alive
        .iter()
        .map(|&r| Bytes::from(props[r].to_bytes()))
        .collect();
    for (j, &from) in alive.iter().enumerate() {
        for &to in alive {
            if to != from {
                endpoints[from].send_framed(to, MsgKind::View, epoch, 0, &payloads[j]);
            }
        }
        endpoints[from].flush_reordered();
    }
    let index_of = |rank: usize| alive.iter().position(|&r| r == rank);
    let mut got: Vec<Vec<Option<Proposal>>> = (0..k).map(|_| vec![None; k]).collect();
    let mut attempt = 0u32;
    loop {
        for (i, &to) in alive.iter().enumerate() {
            while let Some(msg) = endpoints[to].try_recv() {
                let discard = |action: RecoveryAction, peer: Option<usize>, detail: String| {
                    log.record_recovery(RecoveryEvent {
                        epoch,
                        rank: to,
                        peer,
                        kind: Some(MsgKind::View),
                        action,
                        detail,
                    });
                };
                let env = match envelope::open(&msg.payload) {
                    Ok(env) => env,
                    Err(e) => {
                        discard(RecoveryAction::DiscardCorrupt, Some(msg.from), e.to_string());
                        continue;
                    }
                };
                if env.epoch != epoch {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(env.from),
                        format!("view frame from epoch {}", env.epoch),
                    );
                    continue;
                }
                if env.kind != MsgKind::View {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(env.from),
                        format!("late {:?} frame during view gossip", env.kind),
                    );
                    continue;
                }
                let Some(j) = index_of(env.from) else {
                    discard(
                        RecoveryAction::DiscardStale,
                        Some(env.from),
                        "view frame from non-member".to_string(),
                    );
                    continue;
                };
                if env.from == to {
                    continue;
                }
                if got[i][j].is_some() {
                    discard(
                        RecoveryAction::DiscardDuplicate,
                        Some(env.from),
                        "extra view copy discarded".to_string(),
                    );
                    continue;
                }
                match Proposal::from_bytes(env.payload) {
                    Ok(prop) if prop.base == base => {
                        endpoints[to].flows().deliver(env.flow, env.seq);
                        got[i][j] = Some(prop);
                    }
                    Ok(prop) => discard(
                        RecoveryAction::DiscardStale,
                        Some(env.from),
                        format!("proposal amends view {} (current {base})", prop.base),
                    ),
                    Err(why) => discard(RecoveryAction::DiscardCorrupt, Some(env.from), why),
                }
            }
        }
        let missing: Vec<(usize, usize)> = (0..k)
            .flat_map(|i| {
                (0..k)
                    .filter(|&j| j != i && got[i][j].is_none())
                    .map(move |j| (i, j))
                    .collect::<Vec<_>>()
            })
            .collect();
        if missing.is_empty() {
            return Ok(got);
        }
        if attempt >= max_retries {
            return Err(alive[missing[0].1]);
        }
        attempt += 1;
        for &(i, j) in &missing {
            log.record_recovery(RecoveryEvent {
                epoch,
                rank: alive[i],
                peer: Some(alive[j]),
                kind: Some(MsgKind::View),
                action: RecoveryAction::Retransmit,
                detail: format!("attempt {attempt}"),
            });
            let (to, from) = (alive[i], alive[j]);
            let payload = payloads[j].clone();
            endpoints[from].send_framed(to, MsgKind::View, epoch, attempt, &payload);
        }
        for &r in alive {
            endpoints[r].flush_reordered();
        }
    }
}

/// One completed view change, as recorded in the [`MembershipLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewChange {
    /// Gravity epoch the change was agreed in.
    pub epoch: u64,
    /// View number before the change.
    pub from_view: u64,
    /// View number after the change.
    pub to_view: u64,
    /// World size before the change.
    pub from_world: usize,
    /// World size after the change.
    pub to_world: usize,
    /// The deduplicated events the change carried.
    pub events: Vec<MembershipEvent>,
    /// Gossip rounds until stabilization.
    pub rounds: usize,
    /// Particles that moved between ranks during re-decomposition.
    pub migrated_particles: usize,
    /// Wire bytes those migrants cost.
    pub migrated_bytes: usize,
}

/// Audit log of every view change a cluster went through.
#[derive(Clone, Debug, Default)]
pub struct MembershipLog {
    changes: Vec<ViewChange>,
}

impl MembershipLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed view change.
    pub fn push(&mut self, change: ViewChange) {
        self.changes.push(change);
    }

    /// All recorded changes, in order.
    pub fn changes(&self) -> &[ViewChange] {
        &self.changes
    }

    /// True when the world never changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// One-line-per-change rendering for traces and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.changes {
            let events: Vec<String> = c.events.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!(
                "[epoch {:>3}] view {} -> {} ({} -> {} ranks, {} rounds) [{}] migrated {} particles / {} B\n",
                c.epoch,
                c.from_view,
                c.to_view,
                c.from_world,
                c.to_world,
                c.rounds,
                events.join(", "),
                c.migrated_particles,
                c.migrated_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::fault::{FaultKind, FaultPlan, Injection};
    use std::sync::Arc;

    fn faulty_world(p: usize, plan: FaultPlan) -> (Vec<FaultyEndpoint>, SharedFaultLog) {
        let log = SharedFaultLog::new();
        let flows = crate::flow::SharedFlowLedger::new();
        let plan = Arc::new(plan);
        let eps = Fabric::new(p)
            .into_iter()
            .map(|ep| FaultyEndpoint::new(ep, plan.clone(), log.clone(), flows.clone()))
            .collect();
        (eps, log)
    }

    #[test]
    fn initial_view_assigns_ranks_by_id() {
        let v = View::initial(4);
        assert_eq!(v.world(), 4);
        assert_eq!(v.rank_of(2), Some(2));
        assert_eq!(v.rank_of(9), None);
        assert_eq!(v.next_node_id(), 4);
    }

    #[test]
    fn proposal_round_trips_and_rejects_garbage() {
        let v = View::initial(3);
        let p = Proposal::from_events(
            &v,
            &[
                MembershipEvent::Join(7),
                MembershipEvent::Leave(1),
                MembershipEvent::Death(2),
            ],
        );
        let bytes = p.to_bytes();
        assert_eq!(Proposal::from_bytes(&bytes).unwrap(), p);
        assert!(Proposal::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Proposal::from_bytes(&[0u8; 4]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Proposal::from_bytes(&trailing).is_err());
    }

    #[test]
    fn apply_joins_and_departures() {
        let v = View::initial(4);
        let p = Proposal::from_events(
            &v,
            &[MembershipEvent::Join(4), MembershipEvent::Death(1)],
        );
        let next = p.apply(&v);
        assert_eq!(next.number, 1);
        assert_eq!(next.members, vec![0, 2, 3, 4]);
        assert_eq!(next.rank_of(4), Some(3));
    }

    #[test]
    fn gossip_spreads_single_sponsor_knowledge() {
        // Only rank 0 knows about the join; only rank 2 knows about the
        // death. Everyone must converge to the same amended view.
        let (mut eps, log) = faulty_world(4, FaultPlan::new(1));
        let v = View::initial(4);
        let mut events = vec![Vec::new(); 4];
        events[0].push(MembershipEvent::Join(4));
        events[2].push(MembershipEvent::Death(3));
        let live = vec![true, true, true, false];
        let out = converge(&mut eps, &log, &live, 5, &v, &events, 2).unwrap();
        assert_eq!(out.view.members, vec![0, 1, 2, 4]);
        assert_eq!(out.view.number, 1);
        assert_eq!(
            out.events,
            vec![MembershipEvent::Join(4), MembershipEvent::Death(3)]
        );
        assert!(out.rounds >= 2, "knowledge needs a round to spread");
    }

    #[test]
    fn gossip_converges_under_message_faults() {
        let plan = FaultPlan::new(9)
            .with_rate(FaultKind::Drop, 0.15)
            .with_rate(FaultKind::Duplicate, 0.1)
            .with_rate(FaultKind::Corrupt, 0.1)
            .with_injection(Injection {
                epoch: 3,
                from: Some(1),
                to: Some(0),
                kind: Some(MsgKind::View),
                fault: FaultKind::Drop,
            });
        let (mut eps, log) = faulty_world(5, plan);
        let v = View::initial(5);
        let mut events = vec![Vec::new(); 5];
        events[1].push(MembershipEvent::Leave(4));
        let live = vec![true; 5];
        let out = converge(&mut eps, &log, &live, 3, &v, &events, 4).unwrap();
        assert_eq!(out.view.members, vec![0, 1, 2, 3]);
        let snap = log.snapshot();
        assert!(!snap.injected.is_empty(), "plan must have fired");
    }

    #[test]
    fn identical_seed_identical_outcome() {
        let run = || {
            let plan = FaultPlan::new(77)
                .with_rate(FaultKind::Drop, 0.2)
                .with_rate(FaultKind::Reorder, 0.1);
            let (mut eps, log) = faulty_world(4, plan);
            let v = View::initial(4);
            let mut events = vec![Vec::new(); 4];
            events[3].push(MembershipEvent::Join(4));
            let live = vec![true; 4];
            let out = converge(&mut eps, &log, &live, 2, &v, &events, 4).unwrap();
            (out.view, log.snapshot().render())
        };
        let (va, la) = run();
        let (vb, lb) = run();
        assert_eq!(va, vb);
        assert_eq!(la, lb);
    }

    #[test]
    fn silent_rank_is_reported() {
        // Rank 2 is marked live but its endpoint never sends (we seal its
        // sends off by dropping every frame it originates).
        let plan = FaultPlan::new(5)
            .with_injection(Injection {
                epoch: 1,
                from: Some(2),
                to: None,
                kind: Some(MsgKind::View),
                fault: FaultKind::Drop,
            })
            // Retransmissions drop too: attempt > 0 faults need rates, so
            // drive them via a saturating drop rate scoped by the hash —
            // instead just use max_retries = 0 for a deterministic miss.
            ;
        let (mut eps, log) = faulty_world(3, plan);
        let v = View::initial(3);
        let events = vec![Vec::new(); 3];
        let live = vec![true; 3];
        let err = converge(&mut eps, &log, &live, 1, &v, &events, 0).unwrap_err();
        assert_eq!(err, 2);
    }

    #[test]
    fn membership_log_renders_deterministically() {
        let mut log = MembershipLog::new();
        log.push(ViewChange {
            epoch: 7,
            from_view: 0,
            to_view: 1,
            from_world: 4,
            to_world: 5,
            events: vec![MembershipEvent::Join(4)],
            rounds: 2,
            migrated_particles: 120,
            migrated_bytes: 7680,
        });
        let r = log.render();
        assert!(r.contains("view 0 -> 1"), "{r}");
        assert!(r.contains("join(4)"), "{r}");
        assert!(r.contains("4 -> 5 ranks"), "{r}");
        assert_eq!(r, log.render());
    }
}
