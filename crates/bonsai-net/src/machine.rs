//! Machine descriptions — Table I of the paper as data.

use serde::Serialize;

/// Interconnect topology families of the two Crays.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum Topology {
    /// Cray Aries dragonfly (Piz Daint): low diameter, high global bandwidth.
    Dragonfly,
    /// Cray Gemini 3D torus (Titan): diameter grows with machine size.
    Torus3D {
        /// Torus dimensions (x, y, z) in Gemini router units.
        dims: [u32; 3],
    },
}

impl Topology {
    /// Average hop count for uniformly random traffic.
    pub fn mean_hops(&self) -> f64 {
        match self {
            // min-routed dragonfly: ≤ 3 hops (local, global, local); adaptive
            // routing averages a little above 3.
            Topology::Dragonfly => 3.2,
            // 3D torus: quarter of each dimension on average per axis.
            Topology::Torus3D { dims } => dims.iter().map(|&d| d as f64 / 4.0).sum(),
        }
    }

    /// Effective fraction of injection bandwidth usable during dense
    /// collectives (bisection-limited congestion factor).
    pub fn collective_efficiency(&self) -> f64 {
        match self {
            Topology::Dragonfly => 0.75,
            Topology::Torus3D { .. } => 0.35,
        }
    }
}

/// One supercomputer (Table I).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MachineSpec {
    /// Machine name.
    pub name: &'static str,
    /// Total nodes installed.
    pub total_nodes: u32,
    /// Nodes used in the paper's largest runs.
    pub nodes_used: u32,
    /// Host CPU marketing name.
    pub cpu: &'static str,
    /// Host CPU cores per node used by Bonsai's thread groups.
    pub cpu_cores: u32,
    /// Host node RAM in GB.
    pub node_ram_gb: u32,
    /// Relative host-CPU throughput for LET construction (Xeon E5-2670 = 1;
    /// the Opteron 6274's weaker per-core throughput is why Titan shows
    /// "slightly longer LET generation times", §VI-B).
    pub cpu_let_rate: f64,
    /// Network family.
    pub topology: Topology,
    /// Injection bandwidth per node, GB/s.
    pub injection_gbs: f64,
    /// Base one-way message latency, microseconds.
    pub latency_us: f64,
}

/// Piz Daint, Cray XC30 at CSCS.
pub const PIZ_DAINT: MachineSpec = MachineSpec {
    name: "Piz Daint",
    total_nodes: 5272,
    nodes_used: 5200,
    cpu: "Xeon E5-2670",
    cpu_cores: 8,
    node_ram_gb: 32,
    cpu_let_rate: 1.0,
    topology: Topology::Dragonfly,
    injection_gbs: 10.0,
    latency_us: 1.5,
};

/// Titan, Cray XK7 at ORNL.
pub const TITAN: MachineSpec = MachineSpec {
    name: "Titan",
    total_nodes: 18688,
    nodes_used: 18600,
    cpu: "Opteron 6274",
    cpu_cores: 16,
    node_ram_gb: 32,
    cpu_let_rate: 0.55,
    topology: Topology::Torus3D { dims: [25, 16, 24] },
    injection_gbs: 6.0,
    latency_us: 2.5,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_node_counts() {
        assert_eq!(PIZ_DAINT.total_nodes, 5272);
        assert_eq!(PIZ_DAINT.nodes_used, 5200);
        assert_eq!(TITAN.total_nodes, 18688);
        assert_eq!(TITAN.nodes_used, 18600);
    }

    #[test]
    fn titan_torus_holds_all_nodes() {
        if let Topology::Torus3D { dims } = TITAN.topology {
            let routers: u32 = dims.iter().product();
            // Gemini: 2 nodes per router.
            assert!(routers * 2 >= TITAN.total_nodes);
        } else {
            panic!("Titan must be a torus");
        }
    }

    #[test]
    fn dragonfly_beats_torus_on_hops_and_congestion() {
        assert!(PIZ_DAINT.topology.mean_hops() < TITAN.topology.mean_hops());
        assert!(
            PIZ_DAINT.topology.collective_efficiency() > TITAN.topology.collective_efficiency()
        );
    }

    #[test]
    fn piz_daint_cpu_is_faster_for_lets() {
        assert!(PIZ_DAINT.cpu_let_rate > TITAN.cpu_let_rate);
    }
}
