//! SFC-aware rank placement on the interconnect (§VII).
//!
//! "With future techniques, such as the recently announced NVIDIA NVLINK
//! technology, it will be possible to have much faster communication between
//! GPUs in the same physical node. For Bonsai this could mean that by
//! careful placement of the MPI ranks we can communicate with our direct
//! neighbors in particle space using this high speed connection."
//!
//! Bonsai's heavy traffic is between *SFC-adjacent* ranks (the ~40 nearest
//! neighbours that need dedicated LETs). On a 3D torus, naive rank order
//! (row-major over the torus) puts SFC neighbours many hops apart; walking
//! the torus itself along a 3D Hilbert curve keeps them physically adjacent.
//! This module implements both placements and the hop-count metric the
//! `ablation_placement` bench reports.

use crate::machine::Topology;

/// A placement: rank → router coordinates on a 3D torus.
#[derive(Clone, Debug)]
pub struct Placement {
    dims: [u32; 3],
    coords: Vec<[u32; 3]>,
}

/// Strategy for laying ranks onto the torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Ranks in row-major (x fastest) order — the scheduler default.
    RowMajor,
    /// Ranks along a 3D Hilbert walk of the torus, so consecutive ranks are
    /// physically adjacent (the §VII proposal).
    HilbertWalk,
}

impl Placement {
    /// Place `p` ranks on a torus of the given dimensions.
    pub fn new(topology: &Topology, p: usize, strategy: PlacementStrategy) -> Self {
        let dims = match topology {
            Topology::Torus3D { dims } => *dims,
            // Dragonfly has near-uniform distance; model as a flat 1-group
            // "torus" for comparison purposes.
            Topology::Dragonfly => [1, 1, 1],
        };
        let capacity = (dims[0] * dims[1] * dims[2]) as usize;
        assert!(capacity >= 1);
        let coords = match strategy {
            PlacementStrategy::RowMajor => (0..p)
                .map(|r| {
                    let r = (r % capacity) as u32;
                    [
                        r % dims[0],
                        (r / dims[0]) % dims[1],
                        r / (dims[0] * dims[1]),
                    ]
                })
                .collect(),
            PlacementStrategy::HilbertWalk => {
                // Walk a Hilbert curve over the bounding power-of-two cube and
                // keep the visits that land inside the torus; consecutive
                // surviving cells remain close because the curve is local.
                let side = dims.iter().copied().max().unwrap().next_power_of_two();
                let bits = side.trailing_zeros().max(1);
                let mut cells = Vec::with_capacity(capacity);
                let total = 1u64 << (3 * bits);
                for k in 0..total {
                    let c = bonsai_sfc::hilbert::decode_bits(k, bits);
                    if c[0] < dims[0] && c[1] < dims[1] && c[2] < dims[2] {
                        cells.push(c);
                        if cells.len() == capacity {
                            break;
                        }
                    }
                }
                (0..p).map(|r| cells[r % cells.len()]).collect()
            }
        };
        Self { dims, coords }
    }

    /// Torus hop distance between two ranks (wrap-around Manhattan).
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        let ca = self.coords[a];
        let cb = self.coords[b];
        (0..3)
            .map(|i| {
                let d = ca[i].abs_diff(cb[i]);
                d.min(self.dims[i] - d)
            })
            .sum()
    }

    /// Mean hops between each rank and its `k` nearest SFC neighbours on
    /// either side — the traffic pattern of the LET exchange.
    pub fn mean_neighbor_hops(&self, k: usize) -> f64 {
        let p = self.coords.len();
        if p < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut count = 0u64;
        for r in 0..p {
            for d in 1..=k {
                if r + d < p {
                    total += self.hops(r, r + d) as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TITAN;

    #[test]
    fn row_major_coords_cover_torus() {
        let p = Placement::new(&TITAN.topology, 1000, PlacementStrategy::RowMajor);
        assert_eq!(p.coords.len(), 1000);
        // first 25 ranks walk the x dimension
        assert_eq!(p.coords[0], [0, 0, 0]);
        assert_eq!(p.coords[1], [1, 0, 0]);
        assert_eq!(p.coords[24], [24, 0, 0]);
        assert_eq!(p.coords[25], [0, 1, 0]);
    }

    #[test]
    fn hops_metric_respects_wraparound() {
        let p = Placement::new(&TITAN.topology, 1000, PlacementStrategy::RowMajor);
        // rank 0 at [0,0,0] and rank 24 at [24,0,0]: wrap distance is 1 on a
        // 25-wide torus.
        assert_eq!(p.hops(0, 24), 1);
        assert_eq!(p.hops(0, 12), 12);
    }

    #[test]
    fn hilbert_walk_consecutive_ranks_are_adjacent() {
        let p = Placement::new(&TITAN.topology, 4096, PlacementStrategy::HilbertWalk);
        let mean = p.mean_neighbor_hops(1);
        // The curve occasionally skips (cells pruned outside the torus) but
        // stays very local.
        assert!(mean < 2.0, "hilbert mean adjacent hops {mean}");
    }

    #[test]
    fn hilbert_beats_row_major_for_let_traffic() {
        // The §VII claim, quantified: SFC placement brings the ~40-neighbour
        // LET exchange physically closer.
        for p_count in [1024usize, 4096, 16384] {
            let rm = Placement::new(&TITAN.topology, p_count, PlacementStrategy::RowMajor);
            let hw = Placement::new(&TITAN.topology, p_count, PlacementStrategy::HilbertWalk);
            let (a, b) = (rm.mean_neighbor_hops(20), hw.mean_neighbor_hops(20));
            assert!(
                b < a,
                "p={p_count}: hilbert {b} must beat row-major {a}"
            );
        }
    }

    #[test]
    fn single_rank_is_trivial() {
        let p = Placement::new(&TITAN.topology, 1, PlacementStrategy::HilbertWalk);
        assert_eq!(p.mean_neighbor_hops(4), 0.0);
    }
}
