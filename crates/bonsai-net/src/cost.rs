//! Interconnect cost model: bytes → simulated seconds.
//!
//! The cluster simulator measures *real* byte volumes (serialized boundary
//! trees, LETs, exchanged particles) and charges them here. The model is the
//! classic α–β (latency–bandwidth) form with topology-dependent congestion:
//!
//! * point-to-point: `α·hops + bytes / β`;
//! * allgatherv of per-rank payloads: `α·log₂p + total_bytes /
//!   (β·collective_efficiency)` — the recursive-doubling latency term plus a
//!   bisection-limited streaming term, which is what makes the boundary
//!   exchange grow with rank count (the paper's "communication time itself
//!   increases only slightly" §III-B2 refers to its *volume* per rank; the
//!   collective term is what eventually bites at 18600 nodes);
//! * many-to-many LET exchange: each rank sends ≈40 neighbour LETs (§III-B2);
//!   time is the max over injection and drain at any rank.

use crate::machine::MachineSpec;

/// Cost model bound to a machine.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// The machine whose network is modelled.
    pub machine: MachineSpec,
}

impl NetworkModel {
    /// Model for a machine.
    pub fn new(machine: MachineSpec) -> Self {
        Self { machine }
    }

    /// Seconds for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        let m = &self.machine;
        m.latency_us * 1e-6 * m.topology.mean_hops() / 3.0
            + bytes as f64 / (m.injection_gbs * 1e9)
    }

    /// Seconds for an allgatherv where `p` ranks contribute `bytes_per_rank`
    /// each (so every rank receives `p · bytes_per_rank`).
    pub fn allgatherv_time(&self, p: u32, bytes_per_rank: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let m = &self.machine;
        let total = p as u64 * bytes_per_rank;
        let alpha = m.latency_us * 1e-6 * (p as f64).log2();
        let beta = total as f64 / (m.injection_gbs * 1e9 * m.topology.collective_efficiency());
        alpha + beta
    }

    /// Seconds for the pairwise LET exchange phase: every rank sends
    /// `neighbor_count` messages of `bytes_per_let` and receives the same.
    /// Injection-limited with a latency term per message.
    pub fn let_exchange_time(&self, neighbor_count: u32, bytes_per_let: u64) -> f64 {
        let m = &self.machine;
        let inject = (neighbor_count as u64 * bytes_per_let) as f64 / (m.injection_gbs * 1e9);
        let lat = neighbor_count as f64 * m.latency_us * 1e-6 * m.topology.mean_hops() / 3.0;
        inject + lat
    }

    /// Seconds for the particle exchange: `bytes_out` leaves this rank to a
    /// handful of SFC neighbours (point-to-point, overlappable).
    pub fn particle_exchange_time(&self, bytes_out: u64, destinations: u32) -> f64 {
        let m = &self.machine;
        bytes_out as f64 / (m.injection_gbs * 1e9)
            + destinations as f64 * m.latency_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{PIZ_DAINT, TITAN};

    #[test]
    fn p2p_has_latency_floor_and_bandwidth_slope() {
        let net = NetworkModel::new(PIZ_DAINT);
        let t0 = net.p2p_time(0);
        assert!(t0 > 0.0 && t0 < 1e-4, "latency floor {t0}");
        let t1 = net.p2p_time(1_000_000_000);
        assert!((t1 - t0 - 0.1).abs() < 0.01, "1 GB at 10 GB/s ≈ 0.1 s, got {t1}");
    }

    #[test]
    fn allgather_grows_with_rank_count() {
        let net = NetworkModel::new(TITAN);
        let b = 100_000u64; // a typical boundary-tree size
        let t1k = net.allgatherv_time(1024, b);
        let t18k = net.allgatherv_time(18600, b);
        assert!(t18k > t1k * 10.0, "18600 ranks must cost much more: {t1k} vs {t18k}");
    }

    #[test]
    fn aries_beats_gemini_for_collectives() {
        let daint = NetworkModel::new(PIZ_DAINT);
        let titan = NetworkModel::new(TITAN);
        let b = 100_000u64;
        assert!(daint.allgatherv_time(4096, b) < titan.allgatherv_time(4096, b));
    }

    #[test]
    fn boundary_allgather_magnitude_is_table2_like() {
        // Domain update on Titan at 4096 GPUs is ~0.2-0.3 s in Table II; the
        // allgather of ~100 KB boundaries should sit well inside that.
        let net = NetworkModel::new(TITAN);
        let t = net.allgatherv_time(4096, 100_000);
        assert!(t > 0.05 && t < 0.5, "allgather time {t}");
    }

    #[test]
    fn let_exchange_roughly_hidden_behind_gravity() {
        // ~40 neighbours × ~2 MB of LET each must comfortably fit inside the
        // ~2 s local-gravity window (the paper's overlap argument).
        let net = NetworkModel::new(TITAN);
        let t = net.let_exchange_time(40, 2_000_000);
        assert!(t < 2.0, "LET exchange {t} must hide behind ~2 s of gravity");
        assert!(t > 0.005);
    }

    #[test]
    fn single_rank_collective_is_free() {
        let net = NetworkModel::new(PIZ_DAINT);
        assert_eq!(net.allgatherv_time(1, 12345), 0.0);
    }
}
