//! Deterministic fault injection for the message fabric.
//!
//! A [`FaultPlan`] is a *seeded schedule* of faults: message-level faults
//! (drop, duplicate, reorder, delay, truncate, bit-flip) decided by a pure
//! hash of `(seed, from, to, kind, epoch, attempt)`, plus rank-level stalls
//! and hard crashes pinned to specific epochs. Because every decision is a
//! pure function of the plan and the message coordinates, the same seed
//! produces the same faults — and therefore the same [`FaultLog`] — on
//! every run, which is what makes chaos tests reproducible.
//!
//! [`FaultyEndpoint`] wraps a plain [`Endpoint`] and applies the plan on
//! the send side. With an empty plan it is a transparent pass-through
//! (modulo sealing payloads in [`envelope`](crate::envelope) frames), so
//! `Cluster` and the live-mode driver run unmodified when no faults are
//! scheduled.
//!
//! Injection lives here; *detection* is envelope validation on the receive
//! side, and *recovery* (retransmit with bounded attempts, boundary-tree
//! fallback for lost LETs, checkpoint restore for crashed ranks) is driven
//! by `bonsai-sim`'s cluster. Both halves append to the shared [`FaultLog`]
//! so a run can be audited: every injected fault is either recovered or
//! explicitly surfaced.

use crate::envelope::{kind_code, seal_flow};
use crate::fabric::{Endpoint, Message, MsgKind};
use crate::flow::SharedFlowLedger;
use bonsai_util::hash::mix_many;
use bytes::Bytes;
use std::sync::{Arc, Mutex};

/// The kinds of fault the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Message silently discarded.
    Drop,
    /// Message delivered twice.
    Duplicate,
    /// Message held back and delivered after the sender's later messages
    /// in the same phase.
    Reorder,
    /// Message held back a full epoch (arrives stale and is discarded).
    Delay,
    /// Message cut short at a deterministic length.
    Truncate,
    /// One bit of the frame flipped at a deterministic position.
    Corrupt,
    /// Rank-level: the rank's dedicated-LET sends hang for one epoch
    /// (the rank stalls mid-step, after the boundary exchange).
    Stall,
    /// Rank-level: the rank dies at the start of an epoch and sends
    /// nothing from then on until recovery replaces it.
    Crash,
}

impl FaultKind {
    /// All message-level kinds (excludes rank-level `Stall`/`Crash`).
    pub const MESSAGE_KINDS: [FaultKind; 6] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::Corrupt,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// A forced fault pinned to exact message coordinates (used by tests to
/// guarantee coverage of every fault kind regardless of rates). `None`
/// fields match any value. Forced faults fire on first-attempt sends only,
/// so retransmissions can succeed.
#[derive(Clone, Debug)]
pub struct Injection {
    /// Epoch the fault fires in.
    pub epoch: u64,
    /// Sending rank filter.
    pub from: Option<usize>,
    /// Receiving rank filter.
    pub to: Option<usize>,
    /// Message kind filter.
    pub kind: Option<MsgKind>,
    /// The fault to inject (message-level kinds only).
    pub fault: FaultKind,
}

/// A seeded, deterministic schedule of faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// `(fault, probability)` pairs; evaluated as cumulative thresholds.
    rates: Vec<(FaultKind, f64)>,
    injections: Vec<Injection>,
    crashes: Vec<(usize, u64)>,
    stalls: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults scheduled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no fault can ever fire (the fast path: endpoints become
    /// transparent pass-throughs).
    pub fn is_empty(&self) -> bool {
        self.rates.iter().all(|&(_, r)| r == 0.0)
            && self.injections.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
    }

    /// Schedule message-level fault `fault` with probability `rate` per
    /// (message, attempt). Panics on rank-level kinds or rates outside
    /// `[0, 1]`.
    pub fn with_rate(mut self, fault: FaultKind, rate: f64) -> Self {
        assert!(
            FaultKind::MESSAGE_KINDS.contains(&fault),
            "{fault} is a rank-level fault; use crash()/stall()"
        );
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        self.rates.push((fault, rate));
        self
    }

    /// Force a specific fault at specific message coordinates.
    pub fn with_injection(mut self, injection: Injection) -> Self {
        assert!(
            FaultKind::MESSAGE_KINDS.contains(&injection.fault),
            "{} is a rank-level fault; use crash()/stall()",
            injection.fault
        );
        self.injections.push(injection);
        self
    }

    /// Hard-crash `rank` at the start of `epoch`.
    pub fn with_crash(mut self, rank: usize, epoch: u64) -> Self {
        self.crashes.push((rank, epoch));
        self
    }

    /// Stall `rank`'s dedicated-LET sends during `epoch`.
    pub fn with_stall(mut self, rank: usize, epoch: u64) -> Self {
        self.stalls.push((rank, epoch));
        self
    }

    /// The rank scheduled to crash at `epoch`, if any. When several ranks
    /// crash in the same epoch this returns the first-scheduled one; use
    /// [`FaultPlan::crashed_ranks`] to see them all.
    pub fn crashed_rank(&self, epoch: u64) -> Option<usize> {
        self.crashes
            .iter()
            .find(|&&(_, e)| e == epoch)
            .map(|&(r, _)| r)
    }

    /// Every rank scheduled to crash at `epoch`, in ascending rank order.
    /// A correlated failure (e.g. one node hosting several ranks dying)
    /// schedules multiple crashes in the same epoch; recovery must replace
    /// all of them in one restore, not one per rollback.
    pub fn crashed_ranks(&self, epoch: u64) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .crashes
            .iter()
            .filter(|&&(_, e)| e == epoch)
            .map(|&(r, _)| r)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Whether `rank` stalls during `epoch`.
    pub fn stalled(&self, rank: usize, epoch: u64) -> bool {
        self.stalls.contains(&(rank, epoch))
    }

    fn decision_hash(&self, from: usize, to: usize, kind: MsgKind, epoch: u64, attempt: u32) -> u64 {
        mix_many(&[
            self.seed,
            from as u64,
            to as u64,
            kind_code(kind) as u64,
            epoch,
            attempt as u64,
        ])
    }

    /// The fault (if any) to inject into this send. Pure: the same
    /// coordinates always yield the same answer. At most one fault fires
    /// per (message, attempt); forced injections take precedence on first
    /// attempts, then the rate table is consulted via the decision hash.
    pub fn message_fault(
        &self,
        from: usize,
        to: usize,
        kind: MsgKind,
        epoch: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        if attempt == 0 {
            for inj in &self.injections {
                let hit = inj.epoch == epoch
                    && inj.from.map_or(true, |f| f == from)
                    && inj.to.map_or(true, |t| t == to)
                    && inj.kind.map_or(true, |k| k == kind);
                if hit {
                    return Some(inj.fault);
                }
            }
        }
        if self.rates.is_empty() {
            return None;
        }
        let h = self.decision_hash(from, to, kind, epoch, attempt);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut acc = 0.0;
        for &(fault, rate) in &self.rates {
            acc += rate;
            if u < acc {
                return Some(fault);
            }
        }
        None
    }

    /// Deterministic bit position to flip for a `Corrupt` fault on a frame
    /// of `len` bytes: `(byte index, bit mask)`.
    pub fn corrupt_position(
        &self,
        from: usize,
        to: usize,
        kind: MsgKind,
        epoch: u64,
        len: usize,
    ) -> (usize, u8) {
        let h = mix_many(&[
            self.decision_hash(from, to, kind, epoch, u32::MAX),
            len as u64,
        ]);
        ((h as usize) % len.max(1), 1 << ((h >> 32) % 8))
    }

    /// Deterministic truncated length for a `Truncate` fault on a frame of
    /// `len` bytes (always strictly shorter than `len`).
    pub fn truncate_len(
        &self,
        from: usize,
        to: usize,
        kind: MsgKind,
        epoch: u64,
        len: usize,
    ) -> usize {
        let h = mix_many(&[
            self.decision_hash(from, to, kind, epoch, u32::MAX - 1),
            len as u64,
        ]);
        (h as usize) % len.max(1)
    }
}

/// One injected fault, as recorded in the [`FaultLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Epoch the fault fired in.
    pub epoch: u64,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank (for rank-level faults, the faulty rank itself).
    pub to: usize,
    /// Kind of the affected message (`Control` for rank-level faults).
    pub kind: MsgKind,
    /// The injected fault.
    pub fault: FaultKind,
    /// Send attempt the fault applied to (0 = original transmission).
    pub attempt: u32,
}

/// What the recovery machinery did about a detected problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A missing or invalid message was re-requested from its sender.
    Retransmit,
    /// A frame failed envelope validation and was discarded.
    DiscardCorrupt,
    /// A frame arrived twice and the extra copy was discarded.
    DiscardDuplicate,
    /// A frame from a previous epoch arrived late and was discarded.
    DiscardStale,
    /// A dedicated LET never arrived; the receiver fell back to walking
    /// the sender's already-held boundary tree (graceful degradation).
    BoundaryFallback,
    /// A rank missed every heartbeat and retry window and was declared
    /// dead.
    DeclareDead,
    /// Cluster state was rolled back to the last checkpoint to replace a
    /// dead rank.
    RestoreCheckpoint,
    /// The membership view changed (join, graceful leave, or a dead rank
    /// excised) and the cluster re-decomposed onto the new rank set.
    ViewChange,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecoveryAction::Retransmit => "retransmit",
            RecoveryAction::DiscardCorrupt => "discard-corrupt",
            RecoveryAction::DiscardDuplicate => "discard-duplicate",
            RecoveryAction::DiscardStale => "discard-stale",
            RecoveryAction::BoundaryFallback => "boundary-fallback",
            RecoveryAction::DeclareDead => "declare-dead",
            RecoveryAction::RestoreCheckpoint => "restore-checkpoint",
            RecoveryAction::ViewChange => "view-change",
        };
        f.write_str(s)
    }
}

/// One recovery action, as recorded in the [`FaultLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Epoch the action happened in.
    pub epoch: u64,
    /// Rank that acted (usually the receiver).
    pub rank: usize,
    /// The peer involved (sender of the affected message), if any.
    pub peer: Option<usize>,
    /// Kind of the affected message, if any.
    pub kind: Option<MsgKind>,
    /// What was done.
    pub action: RecoveryAction,
    /// Human-readable context (e.g. the envelope error).
    pub detail: String,
}

/// Audit log of injected faults and the recovery actions taken.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultLog {
    /// Faults injected by the plan, in injection order.
    pub injected: Vec<FaultEvent>,
    /// Recovery actions, in the order they were taken.
    pub recoveries: Vec<RecoveryEvent>,
}

impl FaultLog {
    /// Number of injected faults of `kind`.
    pub fn injected_of(&self, kind: FaultKind) -> usize {
        self.injected.iter().filter(|e| e.fault == kind).count()
    }

    /// Number of recovery actions of `action`.
    pub fn recoveries_of(&self, action: RecoveryAction) -> usize {
        self.recoveries.iter().filter(|e| e.action == action).count()
    }

    /// Events restricted to one epoch (used to attach per-step slices to
    /// step measurements).
    pub fn for_epoch(&self, epoch: u64) -> FaultLog {
        FaultLog {
            injected: self
                .injected
                .iter()
                .filter(|e| e.epoch == epoch)
                .cloned()
                .collect(),
            recoveries: self
                .recoveries
                .iter()
                .filter(|e| e.epoch == epoch)
                .cloned()
                .collect(),
        }
    }

    /// True when nothing was injected and nothing needed recovery.
    pub fn is_clean(&self) -> bool {
        self.injected.is_empty() && self.recoveries.is_empty()
    }

    /// One-line-per-event rendering for traces and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.injected {
            out.push_str(&format!(
                "[epoch {:>3}] inject  {:<9} {:?} {} -> {} (attempt {})\n",
                e.epoch, e.fault.to_string(), e.kind, e.from, e.to, e.attempt
            ));
        }
        for e in &self.recoveries {
            let peer = e.peer.map_or("-".to_string(), |p| p.to_string());
            let kind = e.kind.map_or("-".to_string(), |k| format!("{k:?}"));
            out.push_str(&format!(
                "[epoch {:>3}] recover {:<18} rank {} peer {} {} {}\n",
                e.epoch,
                e.action.to_string(),
                e.rank,
                peer,
                kind,
                e.detail
            ));
        }
        out
    }
}

/// A [`FaultLog`] shared between endpoints and the recovery machinery.
#[derive(Clone, Default)]
pub struct SharedFaultLog(Arc<Mutex<FaultLog>>);

impl SharedFaultLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an injected fault.
    pub fn record_fault(&self, event: FaultEvent) {
        self.0.lock().unwrap().injected.push(event);
    }

    /// Record a recovery action.
    pub fn record_recovery(&self, event: RecoveryEvent) {
        self.0.lock().unwrap().recoveries.push(event);
    }

    /// Copy of the full log.
    pub fn snapshot(&self) -> FaultLog {
        self.0.lock().unwrap().clone()
    }
}

/// An [`Endpoint`] that seals outgoing payloads in envelopes and applies a
/// [`FaultPlan`] on the way out. With an empty plan the wrapper is a
/// transparent framed pass-through.
pub struct FaultyEndpoint {
    ep: Endpoint,
    plan: Arc<FaultPlan>,
    log: SharedFaultLog,
    flows: SharedFlowLedger,
    /// Frames held back by `Reorder`, delivered at the end of the send
    /// burst (i.e. after the sender's subsequent messages).
    reordered: Vec<(usize, MsgKind, Bytes)>,
    /// Frames held back by `Delay`/`Stall`, delivered at the start of the
    /// next epoch (where they arrive stale and are discarded).
    delayed: Vec<(usize, MsgKind, Bytes)>,
}

impl FaultyEndpoint {
    /// Wrap `ep` with the given plan, shared log and shared flow ledger.
    /// Every endpoint of one cluster shares a single ledger so flow ids are
    /// assigned globally in driver-thread send order.
    pub fn new(
        ep: Endpoint,
        plan: Arc<FaultPlan>,
        log: SharedFaultLog,
        flows: SharedFlowLedger,
    ) -> Self {
        Self {
            ep,
            plan,
            log,
            flows,
            reordered: Vec::new(),
            delayed: Vec::new(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.ep.rank
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.ep.world
    }

    /// The shared fault log.
    pub fn log(&self) -> &SharedFaultLog {
        &self.log
    }

    /// The shared flow ledger.
    pub fn flows(&self) -> &SharedFlowLedger {
        &self.flows
    }

    /// Seal `payload` in an envelope and send it to `to`, applying the
    /// fault plan. `attempt` is 0 for the original transmission and
    /// increments on each retransmission. Returns the ledger flow id the
    /// frame carries: attempt 0 seals a fresh flow, retransmissions re-use
    /// the open flow on the same `(epoch, from, to, kind)` coordinate.
    pub fn send_framed(
        &mut self,
        to: usize,
        kind: MsgKind,
        epoch: u64,
        attempt: u32,
        payload: &[u8],
    ) -> u64 {
        let flow = if attempt == 0 {
            self.flows.seal(epoch, self.ep.rank, to, kind, payload.len())
        } else {
            self.flows
                .retransmit_latest(epoch, self.ep.rank, to, kind, payload.len())
        };
        let frame = seal_flow(kind, self.ep.rank, epoch, flow, attempt, payload);
        if self.plan.is_empty() {
            self.ep.send(to, kind, frame);
            return flow;
        }

        // A stalled rank's dedicated-LET sends hang until the next epoch.
        if kind == MsgKind::Let && self.plan.stalled(self.ep.rank, epoch) {
            self.record(to, kind, epoch, attempt, flow, FaultKind::Stall);
            self.delayed.push((to, kind, frame));
            return flow;
        }

        match self.plan.message_fault(self.ep.rank, to, kind, epoch, attempt) {
            None => self.ep.send(to, kind, frame),
            Some(FaultKind::Drop) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Drop);
            }
            Some(FaultKind::Duplicate) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Duplicate);
                self.ep.send(to, kind, frame.clone());
                self.ep.send(to, kind, frame);
            }
            Some(FaultKind::Reorder) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Reorder);
                self.reordered.push((to, kind, frame));
            }
            Some(FaultKind::Delay) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Delay);
                self.delayed.push((to, kind, frame));
            }
            Some(FaultKind::Truncate) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Truncate);
                let cut = self
                    .plan
                    .truncate_len(self.ep.rank, to, kind, epoch, frame.len());
                self.ep
                    .send(to, kind, Bytes::copy_from_slice(&frame[..cut]));
            }
            Some(FaultKind::Corrupt) => {
                self.record(to, kind, epoch, attempt, flow, FaultKind::Corrupt);
                let (byte, mask) = self
                    .plan
                    .corrupt_position(self.ep.rank, to, kind, epoch, frame.len());
                let mut bad = frame.to_vec();
                bad[byte] ^= mask;
                self.ep.send(to, kind, Bytes::from(bad));
            }
            Some(rank_level) => unreachable!("{rank_level} cannot be a message fault"),
        }
        flow
    }

    fn record(&self, to: usize, kind: MsgKind, epoch: u64, attempt: u32, flow: u64, fault: FaultKind) {
        self.log.record_fault(FaultEvent {
            epoch,
            from: self.ep.rank,
            to,
            kind,
            fault,
            attempt,
        });
        self.flows.inject(flow, attempt, fault);
    }

    /// Deliver frames held back by `Reorder`. Call at the end of a send
    /// burst so they arrive after the sender's later messages.
    pub fn flush_reordered(&mut self) {
        for (to, kind, frame) in std::mem::take(&mut self.reordered) {
            self.ep.send(to, kind, frame);
        }
    }

    /// Deliver frames held back by `Delay`/`Stall`. Call at the start of a
    /// new epoch; the frames carry their original (now stale) epoch and
    /// are discarded by receive-side validation.
    pub fn flush_delayed(&mut self) {
        for (to, kind, frame) in std::mem::take(&mut self.delayed) {
            self.ep.send(to, kind, frame);
        }
    }

    /// Non-blocking receive of the next raw frame.
    pub fn try_recv(&self) -> Option<Message> {
        self.ep.try_recv()
    }

    /// Blocking receive of the next raw frame.
    pub fn recv(&self) -> Message {
        self.ep.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::open;
    use crate::fabric::Fabric;

    fn pair(plan: FaultPlan) -> (FaultyEndpoint, FaultyEndpoint, SharedFaultLog) {
        let mut eps = Fabric::new(2);
        let log = SharedFaultLog::new();
        let flows = SharedFlowLedger::new();
        let plan = Arc::new(plan);
        let e1 = FaultyEndpoint::new(eps.pop().unwrap(), plan.clone(), log.clone(), flows.clone());
        let e0 = FaultyEndpoint::new(eps.pop().unwrap(), plan, log.clone(), flows);
        (e0, e1, log)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (mut e0, e1, log) = pair(FaultPlan::new(1));
        e0.send_framed(1, MsgKind::Control, 5, 0, b"payload");
        let m = e1.recv();
        let env = open(&m.payload).unwrap();
        assert_eq!(env.payload, b"payload");
        assert_eq!(env.epoch, 5);
        assert_eq!(env.from, 0);
        assert!(log.snapshot().is_clean());
    }

    #[test]
    fn forced_drop_suppresses_delivery_and_logs() {
        let plan = FaultPlan::new(2).with_injection(Injection {
            epoch: 1,
            from: Some(0),
            to: Some(1),
            kind: None,
            fault: FaultKind::Drop,
        });
        let (mut e0, e1, log) = pair(plan);
        e0.send_framed(1, MsgKind::Let, 1, 0, b"x");
        assert!(e1.try_recv().is_none());
        // Retransmission (attempt 1) bypasses the first-attempt injection.
        e0.send_framed(1, MsgKind::Let, 1, 1, b"x");
        assert!(e1.try_recv().is_some());
        let snap = log.snapshot();
        assert_eq!(snap.injected_of(FaultKind::Drop), 1);
    }

    #[test]
    fn corrupt_and_truncate_are_detected_by_envelope() {
        for fault in [FaultKind::Corrupt, FaultKind::Truncate] {
            let plan = FaultPlan::new(3).with_injection(Injection {
                epoch: 0,
                from: None,
                to: None,
                kind: None,
                fault,
            });
            let (mut e0, e1, _log) = pair(plan);
            e0.send_framed(1, MsgKind::Boundary, 0, 0, &[7u8; 256]);
            let m = e1.recv();
            assert!(open(&m.payload).is_err(), "{fault} not detected");
        }
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan::new(4).with_injection(Injection {
            epoch: 0,
            from: None,
            to: None,
            kind: None,
            fault: FaultKind::Duplicate,
        });
        let (mut e0, e1, _log) = pair(plan);
        e0.send_framed(1, MsgKind::Particles, 0, 0, b"p");
        assert!(e1.try_recv().is_some());
        assert!(e1.try_recv().is_some());
        assert!(e1.try_recv().is_none());
    }

    #[test]
    fn delay_arrives_stale_next_epoch() {
        let plan = FaultPlan::new(5).with_injection(Injection {
            epoch: 3,
            from: None,
            to: None,
            kind: None,
            fault: FaultKind::Delay,
        });
        let (mut e0, e1, _log) = pair(plan);
        e0.send_framed(1, MsgKind::Control, 3, 0, b"late");
        assert!(e1.try_recv().is_none());
        e0.flush_delayed();
        let m = e1.recv().payload;
        let env = open(&m).unwrap();
        assert_eq!(env.epoch, 3, "delayed frame keeps its original epoch");
    }

    #[test]
    fn reorder_flushes_after_later_sends() {
        let plan = FaultPlan::new(6).with_injection(Injection {
            epoch: 0,
            from: None,
            to: None,
            kind: Some(MsgKind::Let),
            fault: FaultKind::Reorder,
        });
        let (mut e0, e1, _log) = pair(plan);
        e0.send_framed(1, MsgKind::Let, 0, 0, b"first");
        e0.send_framed(1, MsgKind::Control, 0, 0, b"second");
        e0.flush_reordered();
        let a = open(&e1.recv().payload).unwrap().payload.to_vec();
        let b = open(&e1.recv().payload).unwrap().payload.to_vec();
        assert_eq!(a, b"second");
        assert_eq!(b, b"first");
    }

    #[test]
    fn stall_holds_let_but_not_control() {
        let plan = FaultPlan::new(7).with_stall(0, 2);
        let (mut e0, e1, log) = pair(plan);
        e0.send_framed(1, MsgKind::Control, 2, 0, b"heartbeat");
        e0.send_framed(1, MsgKind::Let, 2, 0, b"let");
        let m = e1.recv();
        assert_eq!(open(&m.payload).unwrap().payload, b"heartbeat");
        assert!(e1.try_recv().is_none(), "LET send must hang while stalled");
        assert_eq!(log.snapshot().injected_of(FaultKind::Stall), 1);
    }

    #[test]
    fn plan_decisions_are_deterministic() {
        let a = FaultPlan::new(99)
            .with_rate(FaultKind::Drop, 0.2)
            .with_rate(FaultKind::Corrupt, 0.2);
        let b = a.clone();
        for epoch in 0..50 {
            for attempt in 0..3 {
                assert_eq!(
                    a.message_fault(0, 1, MsgKind::Let, epoch, attempt),
                    b.message_fault(0, 1, MsgKind::Let, epoch, attempt)
                );
            }
        }
    }

    #[test]
    fn rates_hit_roughly_proportionally() {
        let plan = FaultPlan::new(11).with_rate(FaultKind::Drop, 0.25);
        let mut hits = 0;
        let trials = 4000;
        for epoch in 0..trials {
            if plan.message_fault(0, 1, MsgKind::Control, epoch, 0).is_some() {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((0.18..0.32).contains(&frac), "drop rate {frac} far from 0.25");
    }

    #[test]
    fn crash_and_stall_schedules() {
        let plan = FaultPlan::new(0).with_crash(2, 7).with_stall(1, 3);
        assert_eq!(plan.crashed_rank(7), Some(2));
        assert_eq!(plan.crashed_rank(6), None);
        assert!(plan.stalled(1, 3));
        assert!(!plan.stalled(1, 4));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(123).is_empty());
    }
}
