//! Property-based tests for the envelope wire format: v2 flow frames
//! round-trip every field for arbitrary inputs, legacy v1 frames keep
//! opening (with the reserved no-flow id), and `open` never panics and
//! never accepts a corrupted frame — for any byte soup or bit flip.

use bonsai_net::envelope::{open, seal_flow, seal_v1, EnvelopeError, NO_FLOW};
use bonsai_net::MsgKind;
use proptest::prelude::*;

const KINDS: [MsgKind; 5] = [
    MsgKind::Boundary,
    MsgKind::Particles,
    MsgKind::Let,
    MsgKind::Control,
    MsgKind::View,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v2_flow_frames_round_trip_every_field(
        kind_ix in 0usize..5,
        from in 0usize..(u32::MAX as usize + 1),
        epoch in any::<u64>(),
        flow in any::<u64>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = seal_flow(KINDS[kind_ix], from, epoch, flow, seq, &payload);
        let env = open(&frame).unwrap();
        prop_assert_eq!(env.kind, KINDS[kind_ix]);
        prop_assert_eq!(env.from, from);
        prop_assert_eq!(env.epoch, epoch);
        prop_assert_eq!(env.flow, flow);
        prop_assert_eq!(env.seq, seq);
        prop_assert_eq!(env.payload, &payload[..]);
    }

    #[test]
    fn v1_frames_always_open_with_the_reserved_flow(
        kind_ix in 0usize..5,
        from in 0usize..(u32::MAX as usize + 1),
        epoch in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Backward compatibility is unconditional: any payload sealed in
        // the legacy 32-byte-header layout opens on a v2 fabric and
        // surfaces as "no recorded flow", never as a decode error.
        let frame = seal_v1(KINDS[kind_ix], from, epoch, &payload);
        let env = open(&frame).unwrap();
        prop_assert_eq!(env.kind, KINDS[kind_ix]);
        prop_assert_eq!(env.from, from);
        prop_assert_eq!(env.epoch, epoch);
        prop_assert_eq!(env.flow, NO_FLOW);
        prop_assert_eq!(env.seq, 0u32);
        prop_assert_eq!(env.payload, &payload[..]);
    }

    #[test]
    fn open_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        // Decode or reject — never panic — whatever a hostile or broken
        // peer delivers.
        let _ = open(&bytes);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        flow in any::<u64>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<u64>(),
        legacy in any::<bool>(),
    ) {
        let frame = if legacy {
            seal_v1(MsgKind::Let, 3, 9, &payload)
        } else {
            seal_flow(MsgKind::Let, 3, 9, flow, seq, &payload)
        };
        let mut bad = frame.to_vec();
        let i = (flip as usize) % bad.len();
        bad[i] ^= 1 << (flip % 8) as u8;
        prop_assert!(open(&bad).is_err(), "bit flip at byte {} went undetected", i);
    }

    #[test]
    fn every_truncation_is_reported_as_truncated_or_mismatch(
        flow in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut_bits in any::<u64>(),
    ) {
        let frame = seal_flow(MsgKind::Boundary, 1, 2, flow, 0, &payload);
        let cut = (cut_bits as usize) % frame.len();
        match open(&frame[..cut]) {
            Err(EnvelopeError::Truncated { need, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(need > cut);
            }
            Err(e) => prop_assert!(false, "cut {}: unexpected error {}", cut, e),
            Ok(_) => prop_assert!(false, "cut {} opened successfully", cut),
        }
    }
}
