//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API subset the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) backed by a simple wall-clock
//! timer: per benchmark it runs a short warmup, then reports the median of a
//! fixed number of timed iterations to stdout. No statistics, no plots —
//! enough to compare hot paths locally without crates.io access.

use std::fmt::Display;
use std::time::Instant;

/// Throughput annotation (reported alongside the time).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier with a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Median seconds per iteration, filled by `iter`.
    last_secs: f64,
    iters: usize,
}

impl Bencher {
    /// Time `f`, storing the median over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        self.last_secs = samples[samples.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            last_secs: 0.0,
            iters: self.samples,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_secs > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / b.last_secs / 1e6)
            }
            Some(Throughput::Bytes(n)) if b.last_secs > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / b.last_secs / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.6} ms/iter{}",
            self.name,
            label,
            b.last_secs * 1e3,
            rate
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run(label.to_string(), f);
        self
    }

    /// Benchmark a closure against an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; printing is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples: 10,
            _c: self,
        }
    }

    /// Benchmark a closure without a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(label, f);
        self
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(ran >= 3);
    }
}
