//! Offline shim for [rayon](https://crates.io/crates/rayon), backed by the
//! in-tree [`bonsai_par`] work-stealing pool.
//!
//! The build container has no access to crates.io, so this facade maps the
//! rayon API subset the workspace uses onto `bonsai-par`: `par_iter` /
//! `par_iter_mut` / `into_par_iter` / `par_chunks` with `map`, `zip`,
//! `enumerate`, `filter`, `for_each`, `collect`, `reduce`, `sum`, plus
//! `rayon::join` — all executing on worker threads of the current pool
//! (sized by `BONSAI_THREADS`, overridable with
//! [`bonsai_par::ThreadPool::install`]).
//!
//! Unlike upstream rayon, reductions here are **deterministic**: chunk
//! boundaries derive from input length only and partials combine along a
//! fixed-shape binary tree, so results are bit-identical at every thread
//! count. See the `bonsai-par` crate docs for the contract.

pub use bonsai_par::iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par, ParMap,
};
pub use bonsai_par::pool::{threads_from_env, ThreadPool};
pub use bonsai_par::slice::{ParChunks, ParChunksMut};
pub use bonsai_par::{join, MAX_CHUNKS};

/// The rayon prelude: traits that add the `par_*` methods.
pub mod prelude {
    pub use bonsai_par::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![1u32, 2, 3, 4];
        let s = v.into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10);
    }

    #[test]
    fn zip_enumerate_for_each() {
        let mut a = vec![0i64; 3];
        let b = vec![10i64, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .enumerate()
            .for_each(|(i, (x, y))| *x = *y + i as i64);
        assert_eq!(a, vec![10, 21, 32]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }

    #[test]
    fn runs_on_a_real_pool() {
        let pool = super::ThreadPool::new(4);
        assert_eq!(pool.workers(), 3);
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    // Enough work per item that workers actually pick up chunks.
                    let mut acc = i as u64;
                    for _ in 0..10_000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    let _ = acc;
                    std::thread::current().id()
                })
                .collect()
        });
        assert_eq!(ids.len(), 64);
    }
}
