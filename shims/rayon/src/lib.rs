//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no access to crates.io, so this workspace vendors
//! a minimal, *sequential* implementation of the rayon API subset it uses:
//! `par_iter` / `par_iter_mut` / `into_par_iter` with `map`, `zip`,
//! `enumerate`, `for_each`, `collect`, `reduce`, plus `rayon::join`.
//!
//! Everything runs on the calling thread. Results are bit-identical to the
//! parallel execution for the patterns used here (disjoint outputs, order-
//! preserving collects), which is exactly what the deterministic tests want.

/// A "parallel" iterator: a newtype over a standard iterator so that
/// rayon-specific method signatures (`reduce` with an identity, `zip` taking
/// another parallel iterator) resolve without clashing with `std::iter`.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    /// Map each item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    /// Enumerate items.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Filter items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    /// Consume with a side effect.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into a container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: fold from an identity with an associative op.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Underlying sequential iterator.
    type Iter: Iterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter` on shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Underlying sequential iterator.
    type Iter: Iterator;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut` on exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Underlying sequential iterator.
    type Iter: Iterator;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// Run two closures "in parallel" (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The rayon prelude: traits that add the `par_*` methods.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![1u32, 2, 3, 4];
        let s = v.into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10);
    }

    #[test]
    fn zip_enumerate_for_each() {
        let mut a = vec![0i64; 3];
        let b = vec![10i64, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .enumerate()
            .for_each(|(i, (x, y))| *x = *y + i as i64);
        assert_eq!(a, vec![10, 21, 32]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
