//! Offline shim for [bytes](https://crates.io/crates/bytes).
//!
//! Implements the subset this workspace uses: a cheaply-clonable immutable
//! [`Bytes`] buffer, a growable [`BytesMut`] builder, and the little-endian
//! [`Buf`]/[`BufMut`] accessor traits.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(b: &'static [u8]) -> Self {
        Self { data: Arc::from(b) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Self { data: Arc::from(b) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Little-endian read access over a shrinking byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "Buf::advance past end");
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Little-endian append access.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, b: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append `count` copies of `val`.
    fn put_bytes(&mut self, val: u8, count: usize);
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.data.extend_from_slice(b);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_bytes(&mut self, val: u8, count: usize) {
        self.data.extend(std::iter::repeat(val).take(count));
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u64_le(0xDEAD_BEEF);
        m.put_u32_le(7);
        m.put_u8(3);
        m.put_f64_le(1.5);
        m.put_bytes(0, 3);
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_f64_le(), 1.5);
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..2], &[1, 2]);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }
}
