//! Offline shim for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Only `crossbeam::channel`'s unbounded MPSC channel is used by this
//! workspace; it is backed by `std::sync::mpsc` here. The `Sender` is
//! clonable and `Send`, the `Receiver` is owned by one rank thread — exactly
//! the fabric's usage pattern.

/// MPSC channels, API-compatible with `crossbeam::channel` for the subset
/// used by the fabric.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving half is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty/disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for non-blocking receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    /// Error for bounded-wait receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Send a value; fails only if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, d: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(d).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(1u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
    }
}
