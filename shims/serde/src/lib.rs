//! Offline shim for [serde](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of config
//! and report structs but never drives an actual serde serializer (snapshots
//! and wire formats are explicit little-endian codecs). This shim provides
//! the two marker traits and re-exports no-op derive macros of the same
//! names, which is all the code needs to compile offline.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
