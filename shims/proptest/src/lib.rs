//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! A deterministic miniature property-testing engine exposing the API subset
//! this workspace uses: the `proptest!` macro, `prop_assert*`, `any::<T>()`,
//! range strategies, tuple/array strategies, `prop_map`, and
//! `collection::vec`. Unlike real proptest there is no shrinking; failures
//! report the case number, and every run is reproducible because the RNG is
//! seeded from the test name and case index only.

/// Deterministic RNG used to drive value generation.
pub mod test_runner {
    /// SplitMix64-based generator, seeded per (test, case).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name and case index (stable across runs).
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b - a) as u64 + 1;
                a + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A/0, B/1);
tuple_strategy!(A/0, B/1, C/2);
tuple_strategy!(A/0, B/1, C/2, D/3);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude values.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.next_u64() % 61) as i32 - 30;
        m * 2f64.powi(e)
    }
}

/// Strategy for [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s of `elem` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Run-count configuration (no shrinking in the shim).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count the runner actually uses: the `CI_PROPTEST_CASES`
    /// environment variable, when set to a positive integer, overrides the
    /// configured value — CI cranks coverage up on scheduled runs and
    /// smoke-tests quickly on pull requests without touching the source.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("CI_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Assert inside a property (panics with case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.effective_cases() {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Define deterministic property tests. Each `#[test] fn f(x in strategy)`
/// item expands to a test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -2.5f64..2.5, n in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn tuples_arrays_and_maps(t in (0u64..5, 0u64..5), a in [0u32..2, 0u32..2, 0u32..2],
                                  v in crate::collection::vec(any::<u8>(), 0..16),
                                  m in (0u32..4).prop_map(|k| k * 10)) {
            prop_assert!(t.0 < 5 && t.1 < 5);
            prop_assert!(a.iter().all(|&q| q < 2));
            prop_assert!(v.len() < 16);
            prop_assert_eq!(m % 10, 0);
        }
    }

    #[test]
    fn env_overrides_case_count() {
        // Note: the variable is process-global, so sibling proptest! tests
        // running concurrently may transiently pick it up — that only
        // changes how many (passing) cases they run.
        std::env::set_var("CI_PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::with_cases(64).effective_cases(), 7);
        std::env::set_var("CI_PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases(64).effective_cases(), 64);
        std::env::set_var("CI_PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::with_cases(64).effective_cases(), 64);
        std::env::remove_var("CI_PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(64).effective_cases(), 64);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
