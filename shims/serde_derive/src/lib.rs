//! Offline shim for `serde_derive`: the workspace only uses
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` as inert markers (no
//! serde-based serialization is performed anywhere), so the derives expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
