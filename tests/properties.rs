//! Workspace-level property-based tests: randomized invariants that span
//! crate boundaries (SFC keys ↔ tree topology ↔ LET exchange ↔ forces).

use bonsai::domain::letbuild::{build_let, geometry_opens};
use bonsai::domain::{boundary_tree, LetTree};
use bonsai::sfc::{hilbert, morton, KeyRange};
use bonsai::tree::build::{Tree, TreeParams};
use bonsai::tree::node::NodeKind;
use bonsai::tree::walk::{walk_tree, WalkParams};
use bonsai::tree::Particles;
use bonsai::util::{Aabb, Vec3};
use proptest::prelude::*;

fn arb_coords() -> impl Strategy<Value = [u32; 3]> {
    [0u32..(1 << 21), 0u32..(1 << 21), 0u32..(1 << 21)]
}

fn arb_particles(max_n: usize) -> impl Strategy<Value = Particles> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = bonsai::util::rng::Xoshiro256::seed_from(seed);
        let mut p = Particles::with_capacity(n);
        for i in 0..n {
            // clustered: half in a tight blob, half spread out
            let scale = if i % 2 == 0 { 0.1 } else { 2.0 };
            p.push(
                rng.unit_sphere() * (scale * rng.uniform()),
                Vec3::zero(),
                rng.uniform_in(0.5, 2.0),
                i as u64,
            );
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn morton_round_trip(c in arb_coords()) {
        prop_assert_eq!(morton::decode(morton::encode(c)), c);
    }

    #[test]
    fn hilbert_round_trip(c in arb_coords()) {
        prop_assert_eq!(hilbert::decode(hilbert::encode(c)), c);
    }

    #[test]
    fn hilbert_and_morton_are_injective_on_pairs(a in arb_coords(), b in arb_coords()) {
        if a != b {
            prop_assert_ne!(hilbert::encode(a), hilbert::encode(b));
            prop_assert_ne!(morton::encode(a), morton::encode(b));
        }
    }

    #[test]
    fn covering_cells_tile_any_range(start in 0u64..(1u64 << 63), len in 1u64..(1u64 << 40)) {
        let end = (start + len).min(1u64 << 63);
        let r = KeyRange::new(start.min(end), end);
        let mut cursor = r.start;
        for (key, level) in r.covering_cells() {
            prop_assert_eq!(key, cursor);
            let span = 1u64 << (3 * (21 - level));
            prop_assert_eq!(key % span, 0u64);
            cursor += span;
        }
        prop_assert_eq!(cursor, r.end);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_invariants_hold_for_random_clustered_sets(p in arb_particles(600)) {
        let tree = Tree::build(p, TreeParams::default());
        prop_assert!(tree.check_invariants().is_ok());
    }

    #[test]
    fn boundary_tree_mass_partition(p in arb_particles(500)) {
        let total = p.total_mass();
        let tree = Tree::build(p, TreeParams::default());
        let b = boundary_tree(&tree, &KeyRange::everything());
        prop_assert!(b.check_invariants().is_ok());
        let cut_mass: f64 = b
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Cut)
            .map(|n| n.mass)
            .sum();
        prop_assert!((cut_mass - total).abs() < 1e-9 * total.max(1.0));
        prop_assert_eq!(b.particle_count(), 0);
    }

    #[test]
    fn let_forces_equal_full_tree_forces(p in arb_particles(400), seed in any::<u64>()) {
        // The central LET theorem, fuzzed: for any source set and any probe
        // geometry, walking the pruned LET equals walking the full tree.
        let tree = Tree::build(p, TreeParams::default());
        let mut rng = bonsai::util::rng::Xoshiro256::seed_from(seed);
        let center = Vec3::new(
            rng.uniform_in(-4.0, 4.0),
            rng.uniform_in(-4.0, 4.0),
            rng.uniform_in(-4.0, 4.0),
        );
        let geom = vec![Aabb::cube(center, rng.uniform_in(0.2, 1.0))];
        let probes: Vec<Vec3> = (0..24)
            .map(|_| {
                Vec3::new(
                    rng.uniform_in(geom[0].min.x, geom[0].max.x),
                    rng.uniform_in(geom[0].min.y, geom[0].max.y),
                    rng.uniform_in(geom[0].min.z, geom[0].max.z),
                )
            })
            .collect();
        let groups = vec![bonsai::tree::node::Group {
            begin: 0,
            end: probes.len() as u32,
            bbox: Aabb::from_points(&probes),
        }];
        let theta = rng.uniform_in(0.3, 0.9);
        let params = WalkParams::new(theta, 0.01);
        let (full, _) = walk_tree(&tree.view(), &probes, &groups, &params);
        let lt = build_let(&tree, &geom, theta);
        let lt = LetTree::from_bytes(&lt.to_bytes()).unwrap(); // exercise codec
        let (pruned, stats) = walk_tree(&lt.view(), &probes, &groups, &params);
        prop_assert_eq!(stats.forced_cuts, 0u64);
        for i in 0..probes.len() {
            let d = (full.acc[i] - pruned.acc[i]).norm();
            prop_assert!(d <= 1e-11 * full.acc[i].norm().max(1e-30),
                "probe {} differs by {}", i, d);
        }
    }

    #[test]
    fn geometry_opens_is_monotone_in_theta(p in arb_particles(200), seed in any::<u64>()) {
        // A cell opened at large θ must also be opened at smaller θ.
        let tree = Tree::build(p, TreeParams::default());
        let mut rng = bonsai::util::rng::Xoshiro256::seed_from(seed);
        let geom = vec![Aabb::cube(
            Vec3::new(rng.uniform_in(-3.0, 3.0), 0.0, 0.0),
            rng.uniform_in(0.1, 0.5),
        )];
        for node in &tree.nodes {
            let open_loose = geometry_opens(node, &geom, 1.0 / 0.8);
            let open_tight = geometry_opens(node, &geom, 1.0 / 0.3);
            if open_loose {
                prop_assert!(open_tight, "monotonicity violated");
            }
        }
    }
}
