//! Cross-crate integration: the distributed stack (sfc + tree + domain +
//! net + sim) must agree with the single-process stack (tree + core) and
//! with direct summation.

use bonsai::ic::plummer_sphere;
use bonsai::sim::live::{live_forces, split_for_ranks};
use bonsai::sim::{Cluster, ClusterConfig};
use bonsai::tree::build::{Tree, TreeParams};
use bonsai::tree::direct::direct_self_forces;
use bonsai::tree::walk::{self, WalkParams};
use bonsai::util::Vec3;
use std::collections::HashMap;

fn reference_by_id(ic: &bonsai::tree::Particles, eps: f64) -> HashMap<u64, Vec3> {
    let (f, _) = direct_self_forces(ic, eps, 1.0);
    ic.id.iter().zip(&f.acc).map(|(&i, &a)| (i, a)).collect()
}

#[test]
fn lockstep_live_and_single_process_agree() {
    let n = 2500;
    let ic = plummer_sphere(n, 10);
    let eps = 0.01;
    let theta = 0.4;
    let reference = reference_by_id(&ic, eps);

    // Single process.
    let tree = Tree::build(ic.clone(), TreeParams::default());
    let (single, _) = walk::self_gravity(&tree, &WalkParams::new(theta, eps));
    let mut errs = vec![];
    for i in 0..n {
        let exact = reference[&tree.particles.id[i]];
        errs.push((single.acc[i] - exact).norm() / exact.norm().max(1e-12));
    }
    let rms_single = (errs.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();

    // Lock-step cluster.
    let cluster = Cluster::new(ic.clone(), 5, ClusterConfig::default());
    let acc = cluster.accelerations_by_id();
    let rms_cluster = {
        let mut s = 0.0;
        for (id, a) in &acc {
            let exact = reference[id];
            let e = (*a - exact).norm() / exact.norm().max(1e-12);
            s += e * e;
        }
        (s / n as f64).sqrt()
    };

    // Live (threaded, message-passing) mode.
    let tp = TreeParams::default();
    let (per_rank, domains, keymap) = split_for_ranks(&ic, 5, tp);
    let live = live_forces(per_rank, domains, keymap, tp, WalkParams::new(theta, eps));
    let rms_live = {
        let mut s = 0.0;
        let mut c = 0;
        for r in &live {
            for i in 0..r.particles.len() {
                let exact = reference[&r.particles.id[i]];
                let e = (r.forces.acc[i] - exact).norm() / exact.norm().max(1e-12);
                s += e * e;
                c += 1;
            }
        }
        assert_eq!(c, n);
        (s / c as f64).sqrt()
    };

    // All three are MAC-accurate and mutually consistent.
    assert!(rms_single < 2e-3, "single rms {rms_single}");
    assert!(rms_cluster < 2.0 * rms_single + 1e-6, "cluster rms {rms_cluster}");
    assert!(rms_live < 2.0 * rms_single + 1e-6, "live rms {rms_live}");
}

#[test]
fn distribution_does_not_inflate_work() {
    // The essence of the paper's weak scaling: splitting the problem over
    // ranks must not multiply the evaluated interactions. Compare the total
    // flops of the distributed evaluation against a single-process tree walk
    // over the *same* particles — the distributed walk (coarser group
    // boxes near domain edges, LET frontiers) may do somewhat more work,
    // but never O(p) more.
    let n = 12_000;
    let ic = plummer_sphere(n, 20);
    let tree = Tree::build(ic.clone(), TreeParams::default());
    let (_, st_single) = walk::self_gravity(&tree, &WalkParams::new(0.4, 0.01));
    let single_flops = st_single.counts.flops() as f64;

    for p in [2usize, 4, 8] {
        let cluster = Cluster::new(ic.clone(), p, ClusterConfig::default());
        let m = &cluster.last_measurements;
        let dist_flops: f64 = m
            .counts_local
            .iter()
            .zip(&m.counts_lets)
            .map(|(&a, &b)| (a + b).flops() as f64)
            .sum();
        let ratio = dist_flops / single_flops;
        assert!(
            ratio < 2.5,
            "p = {p}: distributed work is {ratio:.2}x the single-process work"
        );
        assert!(ratio > 0.8, "p = {p}: suspiciously little work ({ratio:.2}x)");
    }
}

#[test]
fn cluster_survives_many_steps_with_migration() {
    // A rotating, collapsing system forces real particle migration between
    // ranks every step.
    let mut ic = plummer_sphere(2000, 30);
    for i in 0..ic.len() {
        // add solid-body rotation to force azimuthal motion
        let p = ic.pos[i];
        ic.vel[i] += Vec3::new(-p.y, p.x, 0.0) * 0.3;
    }
    let mut cfg = ClusterConfig::default();
    cfg.dt = 0.02;
    let mut cluster = Cluster::new(ic, 6, cfg);
    let mut migrated_total = 0usize;
    for _ in 0..10 {
        cluster.step();
        migrated_total += cluster
            .last_measurements
            .exchange_bytes
            .iter()
            .sum::<usize>();
    }
    assert_eq!(cluster.total_particles(), 2000);
    assert!(migrated_total > 0, "rotation must move particles between domains");
    let mut ids = cluster.gather().id;
    ids.sort_unstable();
    assert_eq!(ids, (0..2000).collect::<Vec<u64>>());
}

#[test]
fn boundary_bytes_are_tiny_compared_to_particle_data() {
    // §III-B2: boundary exchange is "virtually independent of the number of
    // particles per GPU" — check boundaries stay small as N grows.
    let mut sizes = vec![];
    for n in [4000usize, 16000] {
        let ic = plummer_sphere(n, 40);
        let cluster = Cluster::new(ic, 4, ClusterConfig::default());
        let total: usize = cluster.last_measurements.boundary_bytes.iter().sum();
        sizes.push(total as f64);
        let particle_bytes = n * 56;
        assert!(
            (total as f64) < 0.25 * particle_bytes as f64,
            "boundaries {total} B vs particles {particle_bytes} B"
        );
    }
    // 4x more particles should grow boundaries far less than 4x.
    assert!(sizes[1] / sizes[0] < 3.0, "boundary growth {:.2}", sizes[1] / sizes[0]);
}
