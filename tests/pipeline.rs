//! End-to-end integration: initial conditions → simulation → analysis,
//! exercising the whole public API across crates.

use bonsai::analysis::bar::BarAnalysis;
use bonsai::analysis::{SurfaceDensityMap, VelocityStructure};
use bonsai::core::{Simulation, SimulationConfig};
use bonsai::ic::{plummer_sphere, MilkyWayModel};
use bonsai::util::units;
use bonsai::util::Vec3;

#[test]
fn plummer_cluster_stays_in_equilibrium() {
    let ic = plummer_sphere(3000, 1);
    let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.02, 0.01));
    let e0 = sim.energy_report();
    assert!((e0.total() + 0.25).abs() < 0.03, "Plummer energy {}", e0.total());
    sim.run(50);
    let e1 = sim.energy_report();
    assert!(e1.drift_from(&e0) < 2e-3);
    assert!((e1.virial_ratio() - 0.5).abs() < 0.06);
}

#[test]
fn milky_way_end_to_end() {
    let mw = MilkyWayModel::paper();
    let n = 8000;
    let (nb, nd, _) = mw.component_counts(n);
    let ic = mw.generate(n, 2);
    let eps = 0.1 * (2.0e5_f64 / n as f64).powf(1.0 / 3.0);
    let dt = units::myr_to_internal(3.0);
    let mut sim = Simulation::new(ic, SimulationConfig::galactic(eps, dt));
    let e0 = sim.energy_report();
    // The composite model must be bound and roughly virialized.
    assert!(e0.total() < 0.0, "galaxy must be bound");
    let q = e0.virial_ratio();
    assert!((0.3..0.8).contains(&q), "virial ratio {q}");

    sim.run(20);
    let e1 = sim.energy_report();
    assert!(e1.drift_from(&e0) < 0.05, "drift {}", e1.drift_from(&e0));

    // Analysis chain on the evolved state.
    let stellar = (0u64, (nb + nd) as u64);
    let map = SurfaceDensityMap::compute(sim.particles(), 15.0, 64, Some(stellar));
    assert!(map.total_mass() > 0.0);
    // The disk stays a disk over 60 Myr.
    let bar = BarAnalysis::measure(sim.particles(), 4.0, Some(stellar));
    assert!(bar.count > 0);
    assert!(bar.a2 < 0.5, "no instant bar after 20 steps: A2 = {}", bar.a2);

    // There are rotating stars near the solar radius.
    let vs = VelocityStructure::measure(
        sim.particles(),
        Vec3::new(8.0, 0.0, 0.0),
        2.0,
        150.0,
        20,
        Some(stellar),
    );
    if vs.count > 20 {
        assert!(vs.v_rot > 100.0, "solar-radius rotation {}", vs.v_rot);
    }
}

#[test]
fn galactic_units_are_consistent_through_the_stack() {
    // A circular orbit at 8 kpc in the composite potential should take
    // 2π·8/v_c internal units — integrate a tracer and verify.
    let mw = MilkyWayModel::paper();
    let vc = mw.circular_velocity(8.0);
    // Tracer: tiny mass orbiting the full analytic model approximated by a
    // heavy central particle with M(<8 kpc).
    let mut p = bonsai::tree::Particles::new();
    let m_enc = mw.enclosed_mass_total(8.0);
    p.push(Vec3::zero(), Vec3::zero(), m_enc, 0);
    let v = bonsai::util::units::circular_velocity(m_enc, 8.0);
    p.push(Vec3::new(8.0, 0.0, 0.0), Vec3::new(0.0, v, 0.0), 1.0, 1);
    let period = std::f64::consts::TAU * 8.0 / v;
    let steps = 600;
    let mut sim = Simulation::new(
        p,
        SimulationConfig::galactic(0.0, period / steps as f64),
    );
    sim.run(steps);
    let pos = {
        let ps = sim.particles();
        let idx = ps.id.iter().position(|&i| i == 1).unwrap();
        ps.pos[idx]
    };
    assert!(
        (pos - Vec3::new(8.0, 0.0, 0.0)).norm() < 0.1,
        "tracer after one period at {pos}"
    );
    // And v_c from the model matches the two-body derivation to ~2x
    // (the full model has mass outside 8 kpc that the tracer test ignores).
    assert!((v / vc - 1.0).abs() < 0.2, "v = {v}, model v_c = {vc}");
}

#[test]
fn snapshot_io_through_facade() {
    let dir = std::env::temp_dir().join("bonsai_facade_snap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.bin");
    let ic = plummer_sphere(500, 3);
    bonsai::core::snapshot::write_snapshot(&path, &ic, 0.5).unwrap();
    let (back, t) = bonsai::core::snapshot::read_snapshot(&path).unwrap();
    assert_eq!(t, 0.5);
    assert_eq!(back.len(), 500);
}
