//! `bonsai` — the command-line driver, mirroring the original Bonsai's role
//! as a standalone simulation tool.
//!
//! ```text
//! bonsai run plummer --n 10000 --steps 100 --theta 0.4
//! bonsai run milkyway --n 40000 --steps 200 --snapshot out/mw.bin
//! bonsai run cluster --n 20000 --ranks 8 --steps 10
//! bonsai resume out/mw.bin --steps 50
//! bonsai info
//! ```

use bonsai::analysis::bar::BarAnalysis;
use bonsai::core::{snapshot, Simulation, SimulationConfig};
use bonsai::ic::{plummer_sphere, MilkyWayModel};
use bonsai::sim::{Cluster, ClusterConfig};
use bonsai::util::units;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the positional arguments.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.push((key.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "bonsai — gravitational tree-code (SC'14 Bonsai reproduction)

USAGE:
  bonsai run plummer   [--n N] [--steps S] [--theta T] [--eps E] [--dt DT] [--snapshot FILE]
  bonsai run milkyway  [--n N] [--steps S] [--snapshot FILE]
  bonsai run cluster   [--n N] [--ranks P] [--steps S]
  bonsai resume FILE   [--steps S] [--theta T] [--eps E] [--dt DT]
  bonsai info

Figures/tables of the paper: see `cargo run -p bonsai-bench --bin <target>`."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("run") => match args.positional.get(1).map(String::as_str) {
            Some("plummer") => run_plummer(&args),
            Some("milkyway") => run_milkyway(&args),
            Some("cluster") => run_cluster(&args),
            _ => usage(),
        },
        Some("resume") => resume(&args),
        Some("info") => info(),
        _ => usage(),
    }
}

fn progress(sim: &Simulation, label: &str) {
    let e = sim.energy_report();
    println!(
        "  {label} t = {:>8.4}  E = {:+.6e}  T/|W| = {:.3}  ({} steps)",
        sim.time(),
        e.total(),
        e.virial_ratio(),
        sim.step_count()
    );
}

fn run_loop(mut sim: Simulation, steps: usize, snapshot_path: Option<&str>) -> ExitCode {
    let e0 = sim.energy_report();
    progress(&sim, "start ");
    let report_every = (steps / 5).max(1);
    for s in 1..=steps {
        sim.step();
        if s % report_every == 0 {
            progress(&sim, "      ");
        }
    }
    let e1 = sim.energy_report();
    println!("energy drift: {:.3e}", e1.drift_from(&e0));
    if let Some(path) = snapshot_path {
        if let Err(e) = snapshot::write_snapshot(path, sim.particles(), sim.time()) {
            eprintln!("snapshot write failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("snapshot written to {path}");
    }
    ExitCode::SUCCESS
}

fn run_plummer(args: &Args) -> ExitCode {
    let n = args.get("n", 10_000usize);
    let steps = args.get("steps", 100usize);
    let cfg = SimulationConfig::nbody_units(
        args.get("theta", 0.4),
        args.get("eps", 0.02),
        args.get("dt", 0.01),
    );
    println!("Plummer sphere: {n} bodies, theta = {}, eps = {}, dt = {}", cfg.theta, cfg.eps, cfg.dt);
    let sim = Simulation::new(plummer_sphere(n, args.get("seed", 42u64)), cfg);
    run_loop(sim, steps, args.get_str("snapshot"))
}

fn run_milkyway(args: &Args) -> ExitCode {
    let n = args.get("n", 40_000usize);
    let steps = args.get("steps", 200usize);
    let mw = MilkyWayModel::paper();
    let (nb, nd, nh) = mw.component_counts(n);
    let eps = 0.1 * (2.0e5_f64 / n as f64).powf(1.0 / 3.0);
    let dt = units::myr_to_internal(args.get("dt-myr", 3.0));
    println!("Milky Way (§IV model): {nb} bulge + {nd} disk + {nh} halo, eps = {eps:.3} kpc");
    let mut sim = Simulation::new(
        mw.generate(n, args.get("seed", 42u64)),
        SimulationConfig::galactic(eps, dt),
    );
    let stellar = (0u64, (nb + nd) as u64);
    let e0 = sim.energy_report();
    for s in 1..=steps {
        sim.step();
        if s % (steps / 5).max(1) == 0 {
            let bar = BarAnalysis::measure(sim.particles(), 4.0, Some(stellar));
            println!(
                "  t = {:>5.2} Gyr  A2 = {:.3}  E drift = {:.2e}",
                units::internal_to_gyr(sim.time()),
                bar.a2,
                sim.energy_report().drift_from(&e0)
            );
        }
    }
    if let Some(path) = args.get_str("snapshot") {
        if let Err(e) = snapshot::write_snapshot(path, sim.particles(), sim.time()) {
            eprintln!("snapshot write failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("snapshot written to {path}");
    }
    ExitCode::SUCCESS
}

fn run_cluster(args: &Args) -> ExitCode {
    let n = args.get("n", 20_000usize);
    let ranks = args.get("ranks", 8usize);
    let steps = args.get("steps", 10usize);
    println!("distributed run: {n} particles on {ranks} logical ranks");
    let mut cluster = Cluster::new(plummer_sphere(n, 7), ranks, ClusterConfig::default());
    let mut last = None;
    for _ in 0..steps {
        last = Some(cluster.step());
    }
    if let Some(b) = last {
        print!("{}", b.format_column("last step, simulated Piz Daint timings"));
        let m = &cluster.last_measurements;
        println!(
            "boundaries {} B, dedicated LETs {} B over {} pairs, imbalance {:.3}",
            m.boundary_bytes.iter().sum::<usize>(),
            m.let_bytes_sent.iter().sum::<usize>(),
            m.let_neighbors.iter().sum::<usize>(),
            m.imbalance
        );
    }
    ExitCode::SUCCESS
}

fn resume(args: &Args) -> ExitCode {
    let Some(path) = args.positional.get(1) else {
        return usage();
    };
    let (particles, time) = match snapshot::read_snapshot(path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot read snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("resumed {} particles at t = {time} from {path}", particles.len());
    let cfg = SimulationConfig::nbody_units(
        args.get("theta", 0.4),
        args.get("eps", 0.02),
        args.get("dt", 0.01),
    );
    let sim = Simulation::new(particles, cfg);
    run_loop(sim, args.get("steps", 100usize), args.get_str("snapshot"))
}

fn info() -> ExitCode {
    println!("bonsai-rs: Rust reproduction of Bédorf et al., SC'14");
    println!("paper: 24.77 Pflops on a Gravitational Tree-Code to Simulate the");
    println!("       Milky Way Galaxy with 18600 GPUs\n");
    let k20x = bonsai::gpu::K20X;
    println!("modelled GPU: {} ({:.2} Tflops SP, {} GB)", k20x.name, k20x.peak_sp_gflops() / 1e3, k20x.mem_gb);
    for machine in [bonsai::net::PIZ_DAINT, bonsai::net::TITAN] {
        println!(
            "machine: {} — {} nodes, {} + {:?}",
            machine.name, machine.total_nodes, machine.cpu, machine.topology
        );
    }
    let b = bonsai::sim::ScalingModel::titan().predict(18600, 13_000_000);
    println!(
        "\nrecord configuration model: {:.2} s/step, {:.2} Pflops application",
        b.total(),
        b.total_flops() / b.total() / 1e15
    );
    ExitCode::SUCCESS
}
