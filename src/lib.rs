//! # bonsai
//!
//! Facade crate for **bonsai-rs**, a from-scratch Rust reproduction of the
//! SC'14 Gordon Bell finalist *"24.77 Pflops on a Gravitational Tree-Code to
//! Simulate the Milky Way Galaxy with 18600 GPUs"* (Bédorf et al.).
//!
//! This crate re-exports every subsystem crate under a stable path and hosts
//! the workspace-level examples (`examples/`) and cross-crate integration
//! tests (`tests/`). For the public simulation API start with
//! [`core::Simulation`](bonsai_core).

pub use bonsai_analysis as analysis;
pub use bonsai_core as core;
pub use bonsai_domain as domain;
pub use bonsai_gpu as gpu;
pub use bonsai_ic as ic;
pub use bonsai_net as net;
pub use bonsai_sfc as sfc;
pub use bonsai_sim as sim;
pub use bonsai_tree as tree;
pub use bonsai_util as util;
