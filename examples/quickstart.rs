//! Quickstart: simulate a Plummer star cluster with the Barnes–Hut engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 10,000-body Plummer sphere in N-body units, integrates it for
//! one crossing time at the paper's production opening angle θ = 0.4, and
//! verifies energy conservation and virial equilibrium along the way.

use bonsai::core::{Simulation, SimulationConfig};
use bonsai::ic::plummer_sphere;

fn main() {
    let n = 10_000;
    println!("bonsai-rs quickstart: {n}-body Plummer sphere, theta = 0.4\n");

    // 1. Initial conditions: standard N-body units (G = M = 1, E = -1/4).
    let ic = plummer_sphere(n, 42);

    // 2. Configure: opening angle, softening, time step.
    let config = SimulationConfig::nbody_units(0.4, 0.02, 0.01);
    let mut sim = Simulation::new(ic, config);

    let initial = sim.energy_report();
    println!(
        "t = 0: E = {:.5}  T/|W| = {:.3}  (Plummer: E = -0.25, virial = 0.5)",
        initial.total(),
        initial.virial_ratio()
    );

    // 3. Integrate for ~1 crossing time (t_cr = 2√2 in N-body units).
    let steps = 283; // 2.83 time units at dt = 0.01
    for chunk in 0..4 {
        for _ in 0..steps / 4 {
            sim.step();
        }
        let e = sim.energy_report();
        println!(
            "t = {:.2}: E = {:.5}  T/|W| = {:.3}  drift = {:.2e}",
            sim.time(),
            e.total(),
            e.virial_ratio(),
            e.drift_from(&initial)
        );
        let _ = chunk;
    }

    // 4. Interaction statistics of the last force evaluation.
    let counts = sim.last_counts();
    let (pp, pc) = counts.per_particle(n);
    println!("\nlast step: {pp:.0} particle-particle and {pc:.0} particle-cell");
    println!("interactions per particle = {:.1} Mflop total at the paper's §VI-A rates",
        counts.flops() as f64 / 1e6);

    let final_report = sim.energy_report();
    assert!(
        final_report.drift_from(&initial) < 1e-2,
        "energy conservation violated"
    );
    println!("\nOK: energy conserved to {:.2e} over one crossing time", final_report.drift_from(&initial));
}
