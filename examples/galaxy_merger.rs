//! A 1:4 minor merger of two star clusters — the workload family of the
//! earlier Bonsai science runs the paper cites (§II: minor-merger growth of
//! compact galaxies), and a stress test for the dynamic load balancer: two
//! dense clumps falling through each other force particles to migrate
//! between domains every few steps.
//!
//! ```sh
//! cargo run --release --example galaxy_merger
//! ```

use bonsai::analysis::energy::density_center;
use bonsai::core::{Simulation, SimulationConfig};
use bonsai::ic::{make_merger, plummer_sphere, MergerOrbit};

fn main() {
    let primary = plummer_sphere(4_000, 1);
    let secondary = plummer_sphere(4_000, 2);
    let orbit = MergerOrbit {
        separation: 6.0,
        impact_parameter: 1.0,
        approach_speed: 0.55, // slightly sub-parabolic: bound pair
        mass_ratio: 0.25,
    };
    let ic = make_merger(&primary, &secondary, orbit, 1_000_000);
    println!(
        "1:4 merger: {} + {} particles, separation {}, impact parameter {}\n",
        primary.len(),
        secondary.len(),
        orbit.separation,
        orbit.impact_parameter
    );

    let mut sim = Simulation::new(ic, SimulationConfig::nbody_units(0.4, 0.03, 0.01));
    let e0 = sim.energy_report();

    for epoch in 1..=8 {
        sim.run(150);
        let p = sim.particles();
        // centres of the two progenitors
        let mut prim = bonsai::tree::Particles::new();
        let mut sec = bonsai::tree::Particles::new();
        for i in 0..p.len() {
            if p.id[i] < 1_000_000 {
                prim.push(p.pos[i], p.vel[i], p.mass[i], p.id[i]);
            } else {
                sec.push(p.pos[i], p.vel[i], p.mass[i], p.id[i]);
            }
        }
        let c1 = density_center(&prim, 6);
        let c2 = density_center(&sec, 6);
        let e = sim.energy_report();
        println!(
            "t = {:>5.2}  nuclear separation = {:>6.3}  E drift = {:.2e}",
            sim.time(),
            c1.distance(c2),
            e.drift_from(&e0)
        );
        let _ = epoch;
    }
    println!("\nthe nuclei sink and merge through dynamical friction; energy stays");
    println!("conserved through the violent phase — the regime the tree-code's");
    println!("per-step rebuild and re-decomposition are designed for.");
}
