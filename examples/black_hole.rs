//! §VII future-work feature: a massive black-hole binary inside a star
//! cluster, integrated with the hybrid direct + tree scheme — the direct
//! N-body core the paper proposes to run on the CPU while the tree-code
//! owns the GPU.
//!
//! ```sh
//! cargo run --release --example black_hole
//! ```

use bonsai::core::{HybridConfig, HybridSimulation, SimulationConfig};
use bonsai::ic::plummer_sphere;
use bonsai::util::Vec3;

fn main() {
    // Star cluster (light particles) + tight equal-mass BH binary.
    let n_stars = 2_000;
    let mut ic = plummer_sphere(n_stars, 17);
    for m in &mut ic.mass {
        *m *= 0.01;
    }
    let m_bh = 0.2_f64;
    let sep = 0.02_f64;
    let v = (m_bh / (2.0 * sep)).sqrt();
    ic.push(Vec3::new(sep / 2.0, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m_bh, 900_001);
    ic.push(Vec3::new(-sep / 2.0, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m_bh, 900_002);

    let cfg = HybridConfig {
        base: SimulationConfig::nbody_units(0.5, 0.05, 2e-4),
        bh_mass_threshold: 0.1,
        direct_radius: 0.1,
        direct_eps: 0.0,
    };
    println!("hybrid tree+direct run: {n_stars} stars + BH binary (sep = {sep})");
    println!("tree softening = {} (binary UNRESOLVABLE by the tree alone)\n", cfg.base.eps);

    let mut sim = HybridSimulation::new(ic, cfg);
    let s0 = sim.last_stats();
    println!(
        "direct set: {} particles around {} black holes ({} exact pair evals/step)",
        s0.direct_set, s0.black_holes, s0.direct_pp
    );

    let orbital_period = std::f64::consts::TAU * (sep / 2.0) / v;
    println!("binary orbital period: {orbital_period:.4} N-body time units\n");
    let steps_per_report = 100;
    for k in 1..=6 {
        sim.run(steps_per_report);
        let p = sim.particles();
        let a = p.id.iter().position(|&i| i == 900_001).unwrap();
        let b = p.id.iter().position(|&i| i == 900_002).unwrap();
        let d = p.pos[a].distance(p.pos[b]);
        println!(
            "t = {:.3} ({:>5.1} orbits): separation = {:.5}  (drift {:+.1}%)  direct set = {}",
            sim.time(),
            sim.time() / orbital_period,
            d,
            100.0 * (d - sep) / sep,
            sim.last_stats().direct_set
        );
        let _ = k;
    }
    println!("\nthe tree's 0.05 softening alone would smear this 0.02-separation binary;");
    println!("the embedded direct core preserves it — the paper's AMUSE-style split (§VII).");
}
