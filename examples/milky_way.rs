//! The paper's workload in miniature: evolve a scaled Milky Way — NFW halo,
//! exponential disk, Hernquist bulge, equal-mass particles — and watch disk
//! structure develop.
//!
//! ```sh
//! cargo run --release --example milky_way -- 30000 200
//! ```
//!
//! (arguments: particle count, step count; defaults 20000 × 150).

use bonsai::analysis::bar::BarAnalysis;
use bonsai::analysis::{density, SurfaceDensityMap};
use bonsai::core::{Simulation, SimulationConfig};
use bonsai::ic::MilkyWayModel;
use bonsai::util::units;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150);

    let mw = MilkyWayModel::paper();
    let (nb, nd, nh) = mw.component_counts(n);
    println!("Milky Way model (§IV of the paper), scaled to {n} particles:");
    println!("  bulge (Hernquist, 4.6e9 Msun):  {nb} particles");
    println!("  disk  (exponential, 5e10 Msun): {nd} particles");
    println!("  halo  (NFW, 6e11 Msun):         {nh} particles");
    println!(
        "  particle mass: {:.2e} Msun (equal for all components, as in the paper)",
        mw.total_mass() / n as f64
    );
    println!(
        "  rotation curve: v_c(8 kpc) = {:.0} km/s\n",
        mw.circular_velocity(8.0)
    );

    let ic = mw.generate(n, 7);
    let eps = 0.1 * (2.0e5 / n as f64).powf(1.0 / 3.0);
    let dt = units::myr_to_internal(3.0);
    let mut sim = Simulation::new(ic, SimulationConfig::galactic(eps, dt));
    let e0 = sim.energy_report();

    let stellar = (0u64, (nb + nd) as u64);
    println!("evolving for {:.2} Gyr (dt = 3 Myr, eps = {eps:.2} kpc, theta = 0.4):",
        units::internal_to_gyr(dt * steps as f64));
    for s in 1..=steps {
        sim.step();
        if s % (steps / 5).max(1) == 0 {
            let bar = BarAnalysis::measure(sim.particles(), 4.0, Some(stellar));
            println!(
                "  t = {:.2} Gyr   disk m=2 amplitude A2 = {:.3}",
                units::internal_to_gyr(sim.time()),
                bar.a2
            );
        }
    }

    // Final-state diagnostics.
    let e1 = sim.energy_report();
    println!("\nenergy drift: {:.2e} (collisional at this particle count)", e1.drift_from(&e0));

    let map = SurfaceDensityMap::compute(sim.particles(), 15.0, 128, Some(stellar));
    println!("\nface-on stellar surface density (log scale, 15 kpc half-width):");
    print!("{}", bonsai::analysis::ppm::ascii_art(&map.log_brightness(3.0), 128, 56));

    let profile = density::radial_profile(sim.particles(), 20.0, 10);
    println!("radial surface-density profile:");
    for (r, sigma) in profile {
        println!("  R = {r:>5.1} kpc   Sigma = {sigma:.3e} Msun/kpc^2");
    }
}
