//! Accuracy/cost sweep: tree forces against direct summation across the
//! opening angle, separating the monopole and quadrupole contributions.
//!
//! ```sh
//! cargo run --release --example accuracy_sweep -- 15000
//! ```
//!
//! This is the trade-off behind the paper's θ = 0.4 choice (§IV): galactic
//! fine structure needs force errors ≲10⁻⁴, an order of magnitude below
//! what the common θ = 0.7 delivers.

use bonsai::ic::MilkyWayModel;
use bonsai::tree::build::{Tree, TreeParams};
use bonsai::tree::direct::direct_self_forces;
use bonsai::tree::walk::{self, WalkParams};
use bonsai::util::units::G;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15_000);

    println!("accuracy sweep on a {n}-particle Milky Way snapshot\n");
    let ic = MilkyWayModel::paper().generate(n, 11);
    let tree = Tree::build(ic, TreeParams::default());
    let (reference, ref_counts) = direct_self_forces(&tree.particles, 0.05, G);
    println!(
        "direct reference: {} pair interactions ({:.1} Gflop)\n",
        ref_counts.pp,
        ref_counts.flops() as f64 / 1e9
    );

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10}",
        "theta", "rms error", "max error", "flops/direct", "speedup"
    );
    for &theta in &[1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2] {
        let (forces, stats) = walk::self_gravity(
            &tree,
            &WalkParams {
                theta,
                eps: 0.05,
                g: G,
                use_quadrupole: true,
            },
        );
        let rms = forces.rms_rel_acc_error(&reference);
        let max = forces.max_rel_acc_error(&reference);
        let frac = stats.counts.flops() as f64 / ref_counts.flops() as f64;
        println!(
            "{:>6.2} {:>14.3e} {:>14.3e} {:>13.1}% {:>9.1}x",
            theta,
            rms,
            max,
            100.0 * frac,
            1.0 / frac
        );
    }

    println!("\nnotes:");
    println!("  - errors shrink monotonically with theta (MAC guarantee)");
    println!("  - theta = 0.4 with quadrupoles reaches ~1e-4 rms at a few percent of");
    println!("    the direct cost — the paper's production operating point");
}
