//! Distributed-memory demo: the paper's parallel machinery on logical ranks.
//!
//! ```sh
//! cargo run --release --example cluster_demo -- 8 12000
//! ```
//!
//! (arguments: rank count, total particles; defaults 6 × 9000.)
//!
//! Runs the full Bonsai step — Peano–Hilbert sample-sort decomposition,
//! particle exchange, boundary-tree allgather, sufficiency checks, LET
//! construction, per-rank force walks — twice: once in lock-step mode with
//! the Table II breakdown, and once in *live* mode with one OS thread per
//! rank exchanging real serialized messages over crossbeam channels.

use bonsai::ic::plummer_sphere;
use bonsai::sim::live::{live_forces, split_for_ranks};
use bonsai::sim::{Cluster, ClusterConfig};
use bonsai::tree::build::TreeParams;
use bonsai::tree::walk::WalkParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(9_000);

    println!("=== lock-step cluster: {ranks} ranks, {n} particles ===\n");
    let ic = plummer_sphere(n, 99);
    let mut cluster = Cluster::new(ic.clone(), ranks, ClusterConfig::default());
    let breakdown = cluster.step();
    print!("{}", breakdown.format_column("simulated Piz Daint timings"));

    let m = &cluster.last_measurements;
    println!("\nmeasured communication (real serialized bytes):");
    println!(
        "  boundary trees: {} B total ({} B/rank avg)",
        m.boundary_bytes.iter().sum::<usize>(),
        m.boundary_bytes.iter().sum::<usize>() / ranks
    );
    println!(
        "  dedicated LETs: {} B over {} pairs (of {} possible)",
        m.let_bytes_sent.iter().sum::<usize>(),
        m.let_neighbors.iter().sum::<usize>(),
        ranks * (ranks - 1)
    );
    println!("  particle exchange: {} B", m.exchange_bytes.iter().sum::<usize>());
    println!("  load imbalance (max/mean): {:.3} (paper cap: 1.3)", m.imbalance);

    println!("\nper-rank schedule (the §III-B2 overlap, reconstructed):");
    let timelines = bonsai::sim::trace::step_timelines(&cluster);
    print!("{}", bonsai::sim::trace::render_gantt(&timelines, 72));
    let hidden = timelines
        .iter()
        .map(|t| t.hidden_comm_fraction())
        .fold(f64::INFINITY, f64::min);
    println!("worst-case hidden-communication fraction: {:.0}%", hidden * 100.0);

    println!("\n=== live mode: one OS thread per rank, real message passing ===\n");
    let params = WalkParams::new(0.4, 0.01);
    let tp = TreeParams::default();
    let (per_rank, domains, keymap) = split_for_ranks(&ic, ranks, tp);
    let results = live_forces(per_rank, domains, keymap, tp, params);
    for (r, res) in results.iter().enumerate() {
        println!(
            "  rank {r}: {:>6} particles, sent {} dedicated LETs, received {}, {} MAC faults",
            res.particles.len(),
            res.lets_sent,
            res.lets_received,
            res.forced_cuts
        );
    }
    let sent: usize = results.iter().map(|r| r.lets_sent).sum();
    let recv: usize = results.iter().map(|r| r.lets_received).sum();
    assert_eq!(sent, recv, "symmetric sufficiency checks must agree");
    println!("\nOK: {sent} dedicated LETs routed; senders and receivers agreed on every");
    println!("pair without any negotiation round-trips (the paper's double-check trick).");
}
