#!/usr/bin/env bash
# Full CI line, runnable locally: tier-1, both tier-1.5 gates, artefact
# byte-determinism, and the scaling regression gate. Mirrors
# .github/workflows/ci.yml so a green local run predicts a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cargo build --release
cargo test -q

echo "== tier-1.5: robustness gate =="
cargo test -q -p bonsai-sim --test robustness

echo "== tier-1.5: observability gate =="
cargo test -q -p bonsai-obs

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

echo "== determinism: obs_trace double run =="
cargo run -q --release -p bonsai-bench --bin obs_trace >/dev/null
cp out/trace_step.json "$scratch/trace_step.1.json"
cargo run -q --release -p bonsai-bench --bin obs_trace >/dev/null
cmp out/trace_step.json "$scratch/trace_step.1.json"

echo "== determinism: obs_scaling double run =="
cargo run -q --release -p bonsai-bench --bin obs_scaling >/dev/null
cp BENCH_scaling.json "$scratch/BENCH_scaling.1.json"
cargo run -q --release -p bonsai-bench --bin obs_scaling >/dev/null
cmp BENCH_scaling.json "$scratch/BENCH_scaling.1.json"

echo "== regression gate: obs_scaling --check =="
cargo run -q --release -p bonsai-bench --bin obs_scaling -- --check baselines/scaling.json

echo "== long-run gate: obs_longrun double run + alert lifecycle =="
cargo run -q --release -p bonsai-bench --bin obs_longrun >/dev/null
cp BENCH_longrun.json "$scratch/BENCH_longrun.1.json"
cp out/longrun_report.html "$scratch/longrun_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_longrun >/dev/null
cmp BENCH_longrun.json "$scratch/BENCH_longrun.1.json"
cmp out/longrun_report.html "$scratch/longrun_report.1.html"
# The seeded fault storm must open AND close at least one recovery alert.
grep -q '"rule": "recovery-storm", .*"kind": "open"' BENCH_longrun.json
grep -q '"rule": "recovery-storm", .*"kind": "close"' BENCH_longrun.json

echo "CI line green"
