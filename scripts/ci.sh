#!/usr/bin/env bash
# Full CI line, runnable locally: tier-1, both tier-1.5 gates, artefact
# byte-determinism, and the scaling regression gate. Mirrors
# .github/workflows/ci.yml so a green local run predicts a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cargo build --release
cargo test -q

echo "== tier-1.5: robustness gate =="
cargo test -q -p bonsai-sim --test robustness

echo "== tier-1.5: elastic membership gate =="
cargo test -q -p bonsai-sim --test membership
cargo test -q -p bonsai-domain --test proptests

echo "== tier-1.5: observability gate =="
cargo test -q -p bonsai-obs

echo "== tier-1.5: message-flow tracing gate =="
CI_PROPTEST_CASES="${CI_PROPTEST_CASES:-32}" cargo test -q -p bonsai-net --test proptests
CI_PROPTEST_CASES="${CI_PROPTEST_CASES:-32}" cargo test -q -p bonsai-sim --test flow_proptests

echo "== tier-1.5: accuracy conformance suite =="
# A modest case count keeps the proptest layer fast on PRs; scheduled
# runs can export CI_PROPTEST_CASES=256 for deeper coverage.
CI_PROPTEST_CASES="${CI_PROPTEST_CASES:-32}" cargo test -q -p bonsai-tree --test proptests
cargo test -q -p bonsai-verify

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

echo "== determinism: obs_trace double run =="
cargo run -q --release -p bonsai-bench --bin obs_trace >/dev/null
cp out/trace_step.json "$scratch/trace_step.1.json"
cp BENCH_step.json "$scratch/BENCH_step.1.json"
cargo run -q --release -p bonsai-bench --bin obs_trace >/dev/null
cmp out/trace_step.json "$scratch/trace_step.1.json"
cmp BENCH_step.json "$scratch/BENCH_step.1.json"

echo "== determinism: obs_scaling double run =="
cargo run -q --release -p bonsai-bench --bin obs_scaling >/dev/null
cp BENCH_scaling.json "$scratch/BENCH_scaling.1.json"
cargo run -q --release -p bonsai-bench --bin obs_scaling >/dev/null
cmp BENCH_scaling.json "$scratch/BENCH_scaling.1.json"

echo "== regression gate: obs_scaling --check =="
cargo run -q --release -p bonsai-bench --bin obs_scaling -- --check baselines/scaling.json

echo "== determinism: verify_accuracy double run =="
cargo run -q --release -p bonsai-bench --bin verify_accuracy >/dev/null
cp BENCH_accuracy.json "$scratch/BENCH_accuracy.1.json"
cargo run -q --release -p bonsai-bench --bin verify_accuracy >/dev/null
cmp BENCH_accuracy.json "$scratch/BENCH_accuracy.1.json"

echo "== regression gate: verify_accuracy --check =="
cargo run -q --release -p bonsai-bench --bin verify_accuracy -- --check baselines/accuracy.json

echo "== gate self-test: loosened MAC must fail the accuracy gate =="
# Inflating the walk's θ while the bands stay nominal simulates an
# accuracy regression; the gate is only trustworthy if this exits 1.
if cargo run -q --release -p bonsai-bench --bin verify_accuracy -- \
    --inflate-theta 1.5 --check baselines/accuracy.json >/dev/null 2>&1; then
  echo "accuracy gate failed to catch an inflated θ" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the inflated run.
cargo run -q --release -p bonsai-bench --bin verify_accuracy >/dev/null
cmp BENCH_accuracy.json "$scratch/BENCH_accuracy.1.json"

echo "== long-run gate: obs_longrun double run + alert lifecycle =="
cargo run -q --release -p bonsai-bench --bin obs_longrun >/dev/null
cp BENCH_longrun.json "$scratch/BENCH_longrun.1.json"
cp out/longrun_report.html "$scratch/longrun_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_longrun >/dev/null
cmp BENCH_longrun.json "$scratch/BENCH_longrun.1.json"
cmp out/longrun_report.html "$scratch/longrun_report.1.html"
# The seeded fault storm must open AND close at least one recovery alert.
grep -q '"rule": "recovery-storm", .*"kind": "open"' BENCH_longrun.json
grep -q '"rule": "recovery-storm", .*"kind": "close"' BENCH_longrun.json

echo "== membership gate: obs_membership double run + churn invariants =="
cargo run -q --release -p bonsai-bench --bin obs_membership >/dev/null
cp BENCH_membership.json "$scratch/BENCH_membership.1.json"
cargo run -q --release -p bonsai-bench --bin obs_membership >/dev/null
cmp BENCH_membership.json "$scratch/BENCH_membership.1.json"
grep -q '"passed": true' BENCH_membership.json

echo "== gate self-test: dropped migrants must fail the membership gate =="
# The sabotage hook drains migrants but never ships them; the gate is only
# trustworthy if that conservation violation makes the run exit 1.
if cargo run -q --release -p bonsai-bench --bin obs_membership -- \
    --drop-migrants >/dev/null 2>&1; then
  echo "membership gate failed to catch dropped migrants" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the sabotaged run.
cargo run -q --release -p bonsai-bench --bin obs_membership >/dev/null
cmp BENCH_membership.json "$scratch/BENCH_membership.1.json"

echo "== profile gate: obs_profile double run + roofline baseline diff =="
cargo run -q --release -p bonsai-bench --bin obs_profile >/dev/null
cp BENCH_profile.json "$scratch/BENCH_profile.1.json"
cp out/profile_report.html "$scratch/profile_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_profile >/dev/null
cmp BENCH_profile.json "$scratch/BENCH_profile.1.json"
cmp out/profile_report.html "$scratch/profile_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_diff -- --against baselines/profile.json

echo "== gate self-test: a sandbagged kernel must fail the profile diff =="
# Slowing the gravity kernels 1.5x moves the roofline points and the
# gravity residuals; the diff gate is only trustworthy if it exits 1.
cargo run -q --release -p bonsai-bench --bin obs_profile -- --sandbag-kernel >/dev/null
if cargo run -q --release -p bonsai-bench --bin obs_diff -- \
    --against baselines/profile.json >/dev/null 2>&1; then
  echo "profile diff gate failed to catch a sandbagged kernel" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the sandbagged run.
cargo run -q --release -p bonsai-bench --bin obs_profile >/dev/null
cmp BENCH_profile.json "$scratch/BENCH_profile.1.json"

echo "== flows gate: obs_flows double run + flow-ledger baseline diff =="
cargo run -q --release -p bonsai-bench --bin obs_flows >/dev/null
cp BENCH_flows.json "$scratch/BENCH_flows.1.json"
cp out/flows_report.html "$scratch/flows_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_flows >/dev/null
cmp BENCH_flows.json "$scratch/BENCH_flows.1.json"
cmp out/flows_report.html "$scratch/flows_report.1.html"
cargo run -q --release -p bonsai-bench --bin obs_diff -- --against baselines/flows.json
# The faulty ladder must conserve flows and attribute its waits.
grep -q '"holds": true' BENCH_flows.json

echo "== gate self-test: masked retransmits must fail the flows diff =="
# Rewriting every flow to a clean first-attempt delivery simulates a
# doctored ledger; the diff gate is only trustworthy if it exits 1.
cargo run -q --release -p bonsai-bench --bin obs_flows -- --mask-retransmits >/dev/null
if cargo run -q --release -p bonsai-bench --bin obs_diff -- \
    --against baselines/flows.json >/dev/null 2>&1; then
  echo "flows diff gate failed to catch masked retransmits" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the masked run.
cargo run -q --release -p bonsai-bench --bin obs_flows >/dev/null
cmp BENCH_flows.json "$scratch/BENCH_flows.1.json"

echo "== stream gate: obs_stream double run + dashboard determinism =="
cargo run -q --release -p bonsai-bench --bin obs_stream >/dev/null
cp BENCH_stream.json "$scratch/BENCH_stream.1.json"
cp out/stream_report.html "$scratch/stream_report.1.html"
cp out/stream_snapshot_0080.html "$scratch/stream_snapshot_0080.1.html"
cargo run -q --release -p bonsai-bench --bin obs_stream >/dev/null
cmp BENCH_stream.json "$scratch/BENCH_stream.1.json"
cmp out/stream_report.html "$scratch/stream_report.1.html"
cmp out/stream_snapshot_0080.html "$scratch/stream_snapshot_0080.1.html"
# The slow subscriber must lose only droppable frames, with exact books,
# and the run's self-metered overhead must sit inside the 3% budget.
grep -q '"lossless_ok": true' BENCH_stream.json
grep -q '"accounting_ok": true' BENCH_stream.json
grep -q '"overhead_ok": true' BENCH_stream.json

echo "== gate self-test: a blocking bus must fail the stream gate =="
# --block-on-full makes the publisher stall on a full ring; the priced
# stalls must blow the overhead budget, and the gate must exit 1.
if cargo run -q --release -p bonsai-bench --bin obs_stream -- \
    --block-on-full >/dev/null 2>&1; then
  echo "stream gate failed to catch a blocking bus" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the sabotaged run.
cargo run -q --release -p bonsai-bench --bin obs_stream >/dev/null
cmp BENCH_stream.json "$scratch/BENCH_stream.1.json"

echo "== parallel gate: obs_parallel double run + thread-sweep determinism =="
cargo run -q --release -p bonsai-bench --bin obs_parallel >/dev/null
cp BENCH_parallel.json "$scratch/BENCH_parallel.1.json"
cargo run -q --release -p bonsai-bench --bin obs_parallel >/dev/null
cmp BENCH_parallel.json "$scratch/BENCH_parallel.1.json"
# Every lane count hashed to the same force bits, every pool fully staffed.
# (out/parallel_timings.json carries the wall-clock curve and is machine-
# dependent, so it is deliberately NOT byte-compared.)
grep -q '"deterministic": true' BENCH_parallel.json
grep -q '"workers_ok": true' BENCH_parallel.json

echo "== gate self-test: pinned pools must fail the parallel gate =="
# --pin-one-thread builds every pool with one lane regardless of the
# requested width; the worker-census gate is only trustworthy if it exits 1.
if cargo run -q --release -p bonsai-bench --bin obs_parallel -- \
    --pin-one-thread >/dev/null 2>&1; then
  echo "parallel gate failed to catch pinned pools" >&2
  exit 1
fi
# Restore the honest artefact clobbered by the sabotaged run.
cargo run -q --release -p bonsai-bench --bin obs_parallel >/dev/null
cmp BENCH_parallel.json "$scratch/BENCH_parallel.1.json"

echo "== thread invariance: step artefacts identical under BONSAI_THREADS=3 =="
# The global pool picks up BONSAI_THREADS; an asymmetric lane count is the
# nastiest case for chunk-boundary bugs, and the artefacts must not move
# by a byte.
BONSAI_THREADS=3 cargo run -q --release -p bonsai-bench --bin obs_trace >/dev/null
cmp BENCH_step.json "$scratch/BENCH_step.1.json"
cmp out/trace_step.json "$scratch/trace_step.1.json"

echo "== race stress: thread-sweep conformance under load =="
# ThreadSanitizer needs nightly + rust-src (-Zbuild-std); offline images
# without it fall back to a stress loop — the conformance sweep repeated
# with the test harness's own threads left on, giving scheduling noise
# many chances to surface a race as a bit difference.
if cargo +nightly -V >/dev/null 2>&1 \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
  RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
    -q -p bonsai-par -p bonsai-tree --test parallel_determinism
else
  PAR_STRESS_ITERS="${PAR_STRESS_ITERS:-200}" \
    cargo test -q -p bonsai-tree --test parallel_determinism
fi

echo "== baseline sweep: obs_diff against every checked-in baseline =="
# Every BENCH_*.json kind has a baseline; a silent drift in any artifact
# fails here with a ranked attribution instead of a bare cmp.
for baseline in baselines/*.json; do
  cargo run -q --release -p bonsai-bench --bin obs_diff -- --against "$baseline"
done

echo "== report smoke: every emitted HTML report is self-contained =="
cargo run -q --release -p bonsai-bench --bin check_reports

echo "== bench summary: one-line rollup of every artifact =="
cargo run -q --release -p bonsai-bench --bin bench_summary

echo "CI line green"
